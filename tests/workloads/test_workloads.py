"""The eight evaluation kernels: construction, correctness, sharing shape."""

import pytest

from repro import PolicyKind
from repro.workloads import ALL_WORKLOADS, WORKLOADS, get_workload

from tests.conftest import make_machine, policy_by_label

SMALL = 0.12  # workload scale for functional tests


class TestRegistry:
    def test_paper_order(self):
        assert list(ALL_WORKLOADS) == [
            "cg", "dmm", "gjk", "heat", "kmeans", "mri", "sobel", "stencil"]

    def test_get_workload(self):
        workload = get_workload("heat", scale=0.5, seed=7)
        assert workload.name == "heat"
        assert workload.scale == 0.5

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="stencil"):
            get_workload("nope")

    def test_names_match_classes(self):
        for name, cls in WORKLOADS.items():
            assert cls.name == name


@pytest.mark.parametrize("name", ALL_WORKLOADS)
class TestBuild:
    def test_builds_nonempty_program(self, name, cohesion_machine):
        program = get_workload(name, scale=SMALL).build(cohesion_machine)
        assert program.phases
        assert program.total_tasks > 0
        assert program.total_ops > 0
        for phase in program.phases:
            assert phase.code_lines > 0

    def test_mode_dependent_coherence_metadata(self, name):
        """SWcc builds carry flush/input metadata; HWcc builds none."""
        hwcc = make_machine(policy_by_label("hwcc_ideal"))
        swcc = make_machine(policy_by_label("swcc"))
        prog_hw = get_workload(name, scale=SMALL).build(hwcc)
        prog_sw = get_workload(name, scale=SMALL).build(swcc)
        hw_meta = sum(len(t.flush_lines) + len(t.input_lines)
                      for p in prog_hw.phases for t in p.tasks)
        sw_meta = sum(len(t.flush_lines) + len(t.input_lines)
                      for p in prog_sw.phases for t in p.tasks)
        assert hw_meta == 0
        assert sw_meta > 0


@pytest.mark.parametrize("name", ALL_WORKLOADS)
@pytest.mark.parametrize("label", ["swcc", "hwcc_ideal", "cohesion"])
class TestFunctionalCorrectness:
    """Every kernel, under every protocol, must deliver exactly the
    values its logical data flow promises -- both at every checked load
    during the run and in memory afterwards."""

    def test_run_is_value_correct(self, name, label):
        machine = make_machine(policy_by_label(label))
        program = get_workload(name, scale=SMALL).build(machine)
        stats = machine.run(program)
        assert stats.load_mismatches == []
        assert machine.verify_expected(program.expected) == []
        assert stats.tasks_executed == program.total_tasks


@pytest.mark.parametrize("label", ["hwcc_real", "dir4b"])
@pytest.mark.parametrize("name", ["heat", "kmeans", "gjk"])
class TestRealisticDirectories:
    def test_small_directories_still_correct(self, name, label):
        machine = make_machine(policy_by_label(label))
        program = get_workload(name, scale=SMALL).build(machine)
        stats = machine.run(program)
        assert stats.load_mismatches == []
        assert machine.verify_expected(program.expected) == []


class TestSharingShapes:
    """Workload-specific properties the paper's analysis relies on."""

    def test_kmeans_swcc_is_atomic_dominated(self):
        machine = make_machine(policy_by_label("swcc"))
        stats = machine.run(get_workload("kmeans", scale=SMALL).build(machine))
        breakdown = stats.messages
        assert breakdown.uncached_atomic > 0.3 * stats.total_messages

    def test_kmeans_hwcc_uses_fewer_atomics(self):
        sw = make_machine(policy_by_label("swcc"))
        sw_stats = sw.run(get_workload("kmeans", scale=SMALL).build(sw))
        hw = make_machine(policy_by_label("hwcc_ideal"))
        hw_stats = hw.run(get_workload("kmeans", scale=SMALL).build(hw))
        assert hw_stats.messages.uncached_atomic < sw_stats.messages.uncached_atomic

    def test_mri_is_compute_bound(self):
        machine = make_machine(policy_by_label("cohesion"))
        program = get_workload("mri", scale=SMALL).build(machine)
        compute = sum(op[1] for p in program.phases for t in p.tasks
                      for op in t.ops if op[0] == 6)
        memory_ops = sum(1 for p in program.phases for t in p.tasks
                         for op in t.ops if op[0] != 6)
        assert compute > 5 * memory_ops  # cycles of compute >> #mem ops

    def test_gjk_tasks_are_tiny(self):
        machine = make_machine(policy_by_label("cohesion"))
        program = get_workload("gjk", scale=SMALL).build(machine)
        avg_ops = program.total_ops / program.total_tasks
        for other in ("heat", "dmm"):
            machine2 = make_machine(policy_by_label("cohesion"))
            prog2 = get_workload(other, scale=SMALL).build(machine2)
            assert avg_ops < 0.5 * prog2.total_ops / prog2.total_tasks

    def test_heat_is_double_buffered(self):
        machine = make_machine(policy_by_label("swcc"))
        program = get_workload("heat", scale=SMALL).build(machine)
        assert len(program.phases) == 2
        writes0 = {op[1] >> 5 for t in program.phases[0].tasks
                   for op in t.ops if op[0] == 1}
        writes1 = {op[1] >> 5 for t in program.phases[1].tasks
                   for op in t.ops if op[0] == 1}
        assert not writes0 & writes1  # alternating buffers

    def test_dmm_panels_read_shared(self):
        machine = make_machine(policy_by_label("cohesion"))
        program = get_workload("dmm", scale=SMALL).build(machine)
        reads = {}
        for task in program.phases[0].tasks:
            for op in task.ops:
                if op[0] == 0:
                    reads[op[1] >> 5] = reads.get(op[1] >> 5, 0) + 1
        assert max(reads.values()) > 1  # panels re-read across tasks

    def test_stencil_inputs_invalidated_lazily(self):
        machine = make_machine(policy_by_label("swcc"))
        program = get_workload("stencil", scale=SMALL).build(machine)
        task = program.phases[0].tasks[1]
        read_lines = {op[1] >> 5 for op in task.ops if op[0] == 0}
        assert read_lines <= set(task.input_lines) | read_lines
        assert set(task.input_lines) & read_lines  # reads are invalidated

    def test_force_hw_data_moves_everything_coherent(self):
        machine = make_machine(policy_by_label("cohesion"))
        workload = get_workload("heat", scale=SMALL)
        workload.force_hw_data = True
        program = workload.build(machine)
        meta = sum(len(t.flush_lines) + len(t.input_lines)
                   for p in program.phases for t in p.tasks)
        assert meta == 0  # nothing is software-managed any more

    def test_scale_controls_task_count(self):
        small = make_machine(policy_by_label("cohesion"))
        big = make_machine(policy_by_label("cohesion"))
        prog_small = get_workload("sobel", scale=0.1).build(small)
        prog_big = get_workload("sobel", scale=0.3).build(big)
        assert prog_big.total_tasks > prog_small.total_tasks

    def test_deterministic_build(self):
        m1 = make_machine(policy_by_label("cohesion"))
        m2 = make_machine(policy_by_label("cohesion"))
        p1 = get_workload("cg", scale=SMALL, seed=3).build(m1)
        p2 = get_workload("cg", scale=SMALL, seed=3).build(m2)
        ops1 = [t.ops for ph in p1.phases for t in ph.tasks]
        ops2 = [t.ops for ph in p2.phases for t in ph.tasks]
        assert ops1 == ops2
