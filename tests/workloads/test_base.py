"""Workload-construction framework: buffers, sketches, value tracking."""

import pytest

from repro import Policy
from repro.errors import ConfigError
from repro.types import (OP_ATOMIC, OP_COMPUTE, OP_LOAD, OP_STORE)
from repro.workloads.base import Buffer, Workload

from tests.conftest import make_machine


class _Probe(Workload):
    """Minimal concrete workload for testing the base helpers."""

    name = "probe"

    def _build(self):
        return self.program([])


def bound_workload(policy=None, track_data=True):
    machine = make_machine(policy or Policy.cohesion(),
                           track_data=track_data)
    workload = _Probe()
    workload.machine = machine
    workload.track = track_data
    return workload, machine


class TestBuffer:
    def test_geometry(self):
        buf = Buffer("b", 0x1000, 100, "sw")
        assert buf.base_line == 0x1000 >> 5
        assert buf.n_lines == 4  # 100 bytes -> 4 lines
        assert buf.line(2) == buf.base_line + 2
        assert list(buf.lines(1, 2)) == [buf.base_line + 1, buf.base_line + 2]
        assert buf.word_addr(3) == 0x100c

    def test_lines_default_covers_all(self):
        buf = Buffer("b", 0, 128, "hw")
        assert len(buf.lines()) == 4


class TestAllocation:
    def test_kinds_place_in_correct_segments(self):
        workload, machine = bound_workload()
        layout = machine.layout
        imm = workload.alloc("i", 64, "immutable")
        sw = workload.alloc("s", 64, "sw")
        hw = workload.alloc("h", 64, "hw")
        assert layout.globals_base <= imm.addr < (
            layout.globals_base + layout.globals_size)
        assert layout.incoherent_heap_base <= sw.addr
        assert layout.coherent_heap_base <= hw.addr < layout.incoherent_heap_base

    def test_unknown_kind_rejected(self):
        workload, _machine = bound_workload()
        with pytest.raises(ConfigError):
            workload.alloc("x", 64, "mystery")

    def test_init_seeds_backing_and_shadow(self):
        workload, machine = bound_workload()
        buf = workload.alloc("i", 16, "immutable", init=lambda w: 10 + w)
        for w in range(4):
            assert machine.memsys.backing.read_word_addr(buf.word_addr(w)) == 10 + w
            assert workload.shadow[buf.word_addr(w)] == 10 + w

    def test_force_hw_data_overrides_kind(self):
        workload, machine = bound_workload()
        workload.force_hw_data = True
        buf = workload.alloc("s", 64, "sw")
        assert machine.layout.coherent_heap_base <= buf.addr
        assert buf.addr < machine.layout.incoherent_heap_base


class TestSwManaged:
    def test_policy_rules(self):
        cases = {
            # policy -> (immutable, sw, hw)
            "swcc": (False, True, True),
            "hwcc": (False, False, False),
            "cohesion": (False, True, False),
        }
        policies = {"swcc": Policy.swcc(), "hwcc": Policy.hwcc_ideal(),
                    "cohesion": Policy.cohesion()}
        for label, expected in cases.items():
            workload, _m = bound_workload(policies[label])
            results = tuple(
                workload.sw_managed(Buffer("b", 0x40000000, 64, kind))
                for kind in ("immutable", "sw", "hw"))
            assert results == expected, label


class TestTaskSketch:
    def test_read_emits_checked_loads(self):
        workload, _m = bound_workload()
        buf = workload.alloc("i", 64, "immutable", init=lambda w: w)
        sk = workload.sketch()
        sk.read(buf, buf.lines(), words_per_line=2)
        assert len(sk.ops) == 4  # 2 lines x 2 words
        kinds = {op[0] for op in sk.ops}
        assert kinds == {OP_LOAD}
        assert all(len(op) == 3 for op in sk.ops)  # expected values attached

    def test_read_unchecked_when_unknown(self):
        workload, _m = bound_workload()
        buf = workload.alloc("s", 64, "sw")  # never written: no shadow
        sk = workload.sketch()
        sk.read(buf, buf.lines(), words_per_line=1)
        assert all(len(op) == 2 for op in sk.ops)

    def test_inv_reads_collects_inputs(self):
        workload, _m = bound_workload()
        buf = workload.alloc("s", 64, "sw", inv_reads=True)
        sk = workload.sketch()
        sk.read(buf, buf.lines(), words_per_line=1)
        assert set(sk.inputs) == set(buf.lines())

    def test_write_updates_shadow_and_flushes(self):
        workload, _m = bound_workload()
        buf = workload.alloc("s", 64, "sw")
        sk = workload.sketch()
        sk.write(buf, buf.lines(), words_per_line=1, value_fn=lambda a: 7)
        assert all(op[0] == OP_STORE and op[2] == 7 for op in sk.ops)
        assert set(sk.flushes) == set(buf.lines())
        assert workload.expected[buf.addr] == 7

    def test_write_inv_writes_adds_inputs(self):
        workload, _m = bound_workload()
        buf = workload.alloc("s", 64, "sw", inv_writes=True)
        sk = workload.sketch()
        sk.write(buf, buf.lines(), words_per_line=1)
        assert set(sk.inputs) == set(buf.lines())

    def test_hw_buffer_writes_have_no_flushes(self):
        workload, _m = bound_workload()
        buf = workload.alloc("h", 64, "hw")
        sk = workload.sketch()
        sk.write(buf, buf.lines(), words_per_line=1)
        assert sk.flushes == set()

    def test_gather_word_granular(self):
        workload, _m = bound_workload()
        buf = workload.alloc("i", 256, "immutable", init=lambda w: w * 3)
        sk = workload.sketch()
        sk.gather(buf, [0, 9, 17])
        assert [op[1] for op in sk.ops] == [buf.word_addr(0),
                                            buf.word_addr(9),
                                            buf.word_addr(17)]
        assert [op[2] for op in sk.ops] == [0, 27, 51]

    def test_atomic_tracks_running_sum(self):
        workload, _m = bound_workload()
        buf = workload.alloc("h", 64, "hw")
        sk = workload.sketch()
        sk.atomic(buf.word_addr(0), operand=5)
        sk.atomic(buf.word_addr(0), operand=3)
        assert workload.expected[buf.addr] == 8

    def test_compute_and_done(self):
        workload, _m = bound_workload()
        sk = workload.sketch()
        sk.compute(100)
        sk.compute(0)  # ignored
        task = sk.done(stack_words=5)
        assert task.ops == [(OP_COMPUTE, 100)]
        assert task.stack_words == 5

    def test_untracked_machine_emits_bare_ops(self):
        workload, _m = bound_workload(track_data=False)
        buf = workload.alloc("s", 64, "sw")
        sk = workload.sketch()
        sk.write(buf, buf.lines(), words_per_line=1)
        sk.atomic(buf.word_addr(0))
        assert all(op[0] != OP_STORE or len(op) == 2
                   for op in sk.ops if op[0] == OP_STORE)
        assert workload.expected == {}
        assert (OP_ATOMIC, buf.word_addr(0), 1) == sk.ops[-1]


class TestValues:
    def test_synth_values_distinct_across_phases(self):
        workload, _m = bound_workload()
        workload.set_phase_salt(1)
        v1 = workload.synth_value(0x1000)
        workload.set_phase_salt(2)
        v2 = workload.synth_value(0x1000)
        assert v1 != v2

    def test_scaled_respects_minimum(self):
        workload = _Probe(scale=0.001)
        assert workload.scaled(100, minimum=8) == 8
        workload = _Probe(scale=2.0)
        assert workload.scaled(100) == 200

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigError):
            _Probe(scale=0)
