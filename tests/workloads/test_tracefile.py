"""Trace capture and replay."""

import io

import pytest

from repro import Policy
from repro.runtime.program import Phase, Program, Task
from repro.types import OP_ATOMIC, OP_COMPUTE, OP_LOAD, OP_STORE
from repro.workloads import get_workload
from repro.workloads.tracefile import (TraceFormatError, TraceWorkload,
                                       dump_program, dumps_program,
                                       load_program, load_trace,
                                       record_workload)

from tests.conftest import make_machine


def sample_program():
    tasks = [
        Task(ops=[(OP_LOAD, 0x1000), (OP_STORE, 0x2000, 42),
                  (OP_COMPUTE, 17), (OP_ATOMIC, 0x3000, 3),
                  (OP_LOAD, 0x1004, 99)],
             flush_lines=[0x2000 >> 5], input_lines=[0x1000 >> 5],
             stack_words=4),
        Task(ops=[(OP_LOAD, 0x1020)], stack_words=0),
    ]
    return Program("sample", [Phase("p0", tasks, code_lines=3)])


class TestRoundTrip:
    def test_dump_and_load_identical(self):
        original = sample_program()
        text = dumps_program(original)
        loaded = load_program(text)
        assert len(loaded.phases) == 1
        phase = loaded.phases[0]
        assert phase.name == "p0" and phase.code_lines == 3
        assert len(phase.tasks) == 2
        task = phase.tasks[0]
        assert task.ops == original.phases[0].tasks[0].ops
        assert list(task.flush_lines) == [0x2000 >> 5]
        assert list(task.input_lines) == [0x1000 >> 5]
        assert task.stack_words == 4
        assert phase.tasks[1].stack_words == 0

    def test_double_round_trip_stable(self):
        text1 = dumps_program(sample_program())
        text2 = dumps_program(load_program(text1))
        assert text1.splitlines()[1:] == text2.splitlines()[1:]

    def test_initial_memory_round_trips(self):
        text = dumps_program(sample_program(), {0x1000: 5, 0x1004: 99})
        _program, inits = load_trace(text)
        assert inits == {0x1000: 5, 0x1004: 99}

    def test_dump_counts_records(self):
        buffer = io.StringIO()
        count = dump_program(sample_program(), buffer)
        assert count == len(buffer.getvalue().splitlines())


class TestParsing:
    def test_comments_and_blanks_ignored(self):
        program = load_program("# hi\n\nphase p 2\ntask 1\nld 40\n")
        assert program.phases[0].tasks[0].ops == [(OP_LOAD, 0x40)]

    def test_task_before_phase_rejected(self):
        with pytest.raises(TraceFormatError, match="task before phase"):
            load_program("task 1\n")

    def test_op_outside_task_rejected(self):
        with pytest.raises(TraceFormatError, match="outside a task"):
            load_program("phase p 1\nld 40\n")

    def test_unknown_record_rejected(self):
        with pytest.raises(TraceFormatError, match="unknown record"):
            load_program("phase p 1\ntask 0\nfrobnicate 1\n")

    def test_malformed_record_rejected(self):
        with pytest.raises(TraceFormatError, match="malformed"):
            load_program("phase p 1\ntask 0\nld zz\n")
        with pytest.raises(TraceFormatError, match="malformed"):
            load_program("phase p\n")


class TestReplay:
    def test_recorded_kernel_replays_with_same_traffic(self):
        recorder_machine = make_machine(Policy.cohesion())
        trace = record_workload(get_workload("gjk", scale=0.1),
                                recorder_machine)

        original_machine = make_machine(Policy.cohesion())
        original = get_workload("gjk", scale=0.1).build(original_machine)
        original_stats = original_machine.run(original)

        replay_machine = make_machine(Policy.cohesion())
        replay = TraceWorkload(trace).build(replay_machine)
        replay_stats = replay_machine.run(replay)

        assert replay_stats.total_messages == original_stats.total_messages
        assert replay_stats.tasks_executed == original_stats.tasks_executed
        assert replay_stats.cycles == original_stats.cycles

    def test_replay_is_value_correct(self):
        recorder_machine = make_machine(Policy.cohesion())
        trace = record_workload(get_workload("sobel", scale=0.1),
                                recorder_machine)
        machine = make_machine(Policy.swcc())  # replay under another model
        workload = TraceWorkload(trace)
        program = workload.build(machine)
        stats = machine.run(program)
        assert stats.load_mismatches == []
        assert machine.verify_expected(workload.expected) == []

    def test_replay_from_file_object(self, tmp_path):
        recorder_machine = make_machine(Policy.cohesion())
        trace = record_workload(get_workload("mri", scale=0.1),
                                recorder_machine)
        path = tmp_path / "mri.trace"
        path.write_text(trace)
        with open(path) as handle:
            workload = TraceWorkload(handle)
        machine = make_machine(Policy.cohesion())
        program = workload.build(machine)
        stats = machine.run(program)
        assert stats.load_mismatches == []

    def test_hand_written_regression_case(self):
        """The format is meant for hand-built protocol regressions."""
        # clear of the runtime's own queue/barrier/descriptor cells,
        # which live at the bottom of the coherent heap
        heap = 0x2100_0000
        trace = f"""
        phase writeback 1
        task 0
        st {heap:x} 7
        phase readback 1
        task 0
        ld {heap:x} 7
        """
        machine = make_machine(Policy.hwcc_ideal())
        program = TraceWorkload(trace).build(machine)
        stats = machine.run(program)
        assert stats.load_mismatches == []
