"""Bucketed contention resources."""

from hypothesis import given, settings, strategies as st

from repro.timing import BUCKET_CYCLES, Resource, ResourceGroup


class TestResource:
    def test_idle_resource_starts_immediately(self):
        r = Resource()
        assert r.acquire(100.0, 1.0) == 100.0

    def test_zero_occupancy_is_free(self):
        r = Resource()
        assert r.acquire(5.0, 0.0) == 5.0
        assert r.total_busy == 0.0

    def test_saturated_bucket_spills_forward(self):
        r = Resource()
        now = 10.0
        starts = [r.acquire(now, 8.0) for _ in range(6)]
        # 4 fit in the first 32-cycle bucket; the rest start in the next.
        assert starts[:4] == [now] * 4
        assert all(s >= BUCKET_CYCLES for s in starts[4:])

    def test_earlier_time_not_blocked_by_later_reservation(self):
        """The motivating property: out-of-order acquisition stays local."""
        r = Resource()
        r.acquire(10_000.0, 8.0)           # a far-future reservation
        assert r.acquire(100.0, 8.0) == 100.0

    def test_backlog_reports_bucket_usage(self):
        r = Resource()
        r.acquire(0.0, 3.0)
        assert r.backlog(1.0) == 3.0
        assert r.backlog(BUCKET_CYCLES + 1) == 0.0

    def test_total_busy_accumulates(self):
        r = Resource()
        r.acquire(0.0, 2.0)
        r.acquire(1.0, 3.0)
        assert r.total_busy == 5.0
        assert r.acquisitions == 2

    def test_utilization(self):
        r = Resource()
        r.acquire(0.0, 10.0)
        assert r.utilization(100.0) == 0.1
        assert r.utilization(0.0) == 0.0
        r.acquire(0.0, 1000.0)
        assert r.utilization(100.0) == 1.0  # clamped

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 1e6), st.floats(0.01, 16.0)),
                    min_size=1, max_size=100))
    def test_start_never_before_request(self, reqs):
        r = Resource()
        for now, occ in reqs:
            assert r.acquire(now, occ) >= now

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(0, 1000), min_size=1, max_size=200))
    def test_capacity_conserved_per_bucket(self, times):
        r = Resource()
        for now in times:
            r.acquire(now, 1.0)
        assert all(used <= BUCKET_CYCLES for used in r._used.values())
        assert abs(sum(r._used.values()) - r.total_busy) < 1e-6

    @settings(max_examples=50, deadline=None)
    @given(st.floats(0, 1e5), st.integers(1, 200))
    def test_burst_delay_grows_linearly(self, now, n):
        """n simultaneous unit requests occupy ~n cycles of service."""
        r = Resource()
        last = max(r.acquire(now, 1.0) for _ in range(n))
        assert last - now <= n + BUCKET_CYCLES


class _ReferenceResource:
    """The original linear-scan ``Resource``, kept verbatim as the oracle.

    ``Resource.acquire`` now consults a path-compressed skip structure
    when the first bucket probe fails; this class preserves the plain
    scan so the sweep below can prove the two return bit-identical
    start times and leave bit-identical ``_used`` ledgers.
    """

    def __init__(self):
        self._used = {}
        self.total_busy = 0.0
        self.acquisitions = 0

    def acquire(self, now, occupancy):
        self.acquisitions += 1
        if occupancy <= 0.0:
            return now
        self.total_busy += occupancy
        used = self._used
        bucket = int(now / BUCKET_CYCLES)
        if occupancy <= BUCKET_CYCLES:
            filled = used.get(bucket, 0.0)
            while filled + occupancy > BUCKET_CYCLES:
                bucket += 1
                filled = used.get(bucket, 0.0)
            used[bucket] = filled + occupancy
        else:
            while used.get(bucket, 0.0) >= BUCKET_CYCLES:
                bucket += 1
            remaining = occupancy
            spill = bucket
            while remaining > 0.0:
                filled = used.get(spill, 0.0)
                take = BUCKET_CYCLES - filled
                if take > remaining:
                    take = remaining
                if take > 0.0:
                    used[spill] = filled + take
                    remaining -= take
                spill += 1
        start = bucket * BUCKET_CYCLES
        if now > start:
            start = now
        return start


#: Every occupancy class the simulator issues: crossbar slots, tree
#: links, half-cost release ports, unit bank ports, multi-cycle DRAM
#: line transfers, and a wider-than-bucket spill case.
_OCC_CLASSES = [1.0 / 16.0, 0.125, 0.5, 1.0, 4.0, 8.0, 40.0]


class TestSlotSearchEquality:
    """The skip-accelerated search must equal the linear scan exactly."""

    @staticmethod
    def _check(requests):
        fast, ref = Resource(), _ReferenceResource()
        for now, occ in requests:
            assert fast.acquire(now, occ) == ref.acquire(now, occ)
        assert fast._used == ref._used
        assert fast.total_busy == ref.total_busy

    def test_exhaustive_single_class_saturation(self):
        """Each occupancy class alone, driven to deep saturation."""
        for occ in _OCC_CLASSES:
            n = int(6 * BUCKET_CYCLES / min(occ, BUCKET_CYCLES)) + 8
            self._check([(3.0, occ)] * n)

    def test_exhaustive_class_pairs_interleaved(self):
        """Every ordered pair of occupancy classes, interleaved.

        This is the hazard the skip table must survive: buckets full
        for a large class may still take a smaller one, and a smaller
        class arriving later invalidates recorded skips.
        """
        for a in _OCC_CLASSES:
            for b in _OCC_CLASSES:
                reqs = []
                for i in range(160):
                    occ = a if i % 3 else b
                    reqs.append((float((i * 7) % 96), occ))
                self._check(reqs)

    def test_out_of_order_times_across_window(self):
        """Requests hopping across a multi-bucket window, all classes."""
        times = [0.0, 95.0, 33.0, 64.0, 1.0, 500.0, 31.9, 32.0, 96.1]
        reqs = [(t, _OCC_CLASSES[i % len(_OCC_CLASSES)])
                for i, t in enumerate(times * 20)]
        self._check(reqs)

    def test_wide_request_lands_amid_backlog(self):
        """Spill-path requests interleaved with saturating narrow ones."""
        reqs = [(0.0, 8.0)] * 10 + [(0.0, 40.0)] + [(0.0, 0.5)] * 80 \
            + [(0.0, 40.0)] + [(10.0, 1.0)] * 40
        self._check(reqs)

    def test_reset_clears_skip_state(self):
        fast, ref = Resource(), _ReferenceResource()
        for _ in range(200):
            fast.acquire(0.0, 1.0)
        fast.reset()
        assert fast._full_next == {} and fast._used == {}
        for _ in range(40):
            assert fast.acquire(0.0, 1.0) == ref.acquire(0.0, 1.0)
        assert fast._used == ref._used

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 2000),
                              st.sampled_from(_OCC_CLASSES)),
                    min_size=1, max_size=300))
    def test_generative_equality(self, reqs):
        self._check(reqs)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 500),
                              st.floats(0.01, 48.0)),
                    min_size=1, max_size=200))
    def test_generative_equality_arbitrary_occupancies(self, reqs):
        self._check(reqs)


class TestResourceGroup:
    def test_independent_members(self):
        g = ResourceGroup(3)
        assert len(g) == 3
        g.acquire(0, 0.0, 32.0)
        assert g.acquire(1, 0.0, 1.0) == 0.0  # other member unaffected

    def test_indexing(self):
        g = ResourceGroup(2)
        assert g[0] is not g[1]
        assert g[0] is g.members[0]
