"""Bucketed contention resources."""

from hypothesis import given, settings, strategies as st

from repro.timing import BUCKET_CYCLES, Resource, ResourceGroup


class TestResource:
    def test_idle_resource_starts_immediately(self):
        r = Resource()
        assert r.acquire(100.0, 1.0) == 100.0

    def test_zero_occupancy_is_free(self):
        r = Resource()
        assert r.acquire(5.0, 0.0) == 5.0
        assert r.total_busy == 0.0

    def test_saturated_bucket_spills_forward(self):
        r = Resource()
        now = 10.0
        starts = [r.acquire(now, 8.0) for _ in range(6)]
        # 4 fit in the first 32-cycle bucket; the rest start in the next.
        assert starts[:4] == [now] * 4
        assert all(s >= BUCKET_CYCLES for s in starts[4:])

    def test_earlier_time_not_blocked_by_later_reservation(self):
        """The motivating property: out-of-order acquisition stays local."""
        r = Resource()
        r.acquire(10_000.0, 8.0)           # a far-future reservation
        assert r.acquire(100.0, 8.0) == 100.0

    def test_backlog_reports_bucket_usage(self):
        r = Resource()
        r.acquire(0.0, 3.0)
        assert r.backlog(1.0) == 3.0
        assert r.backlog(BUCKET_CYCLES + 1) == 0.0

    def test_total_busy_accumulates(self):
        r = Resource()
        r.acquire(0.0, 2.0)
        r.acquire(1.0, 3.0)
        assert r.total_busy == 5.0
        assert r.acquisitions == 2

    def test_utilization(self):
        r = Resource()
        r.acquire(0.0, 10.0)
        assert r.utilization(100.0) == 0.1
        assert r.utilization(0.0) == 0.0
        r.acquire(0.0, 1000.0)
        assert r.utilization(100.0) == 1.0  # clamped

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 1e6), st.floats(0.01, 16.0)),
                    min_size=1, max_size=100))
    def test_start_never_before_request(self, reqs):
        r = Resource()
        for now, occ in reqs:
            assert r.acquire(now, occ) >= now

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(0, 1000), min_size=1, max_size=200))
    def test_capacity_conserved_per_bucket(self, times):
        r = Resource()
        for now in times:
            r.acquire(now, 1.0)
        assert all(used <= BUCKET_CYCLES for used in r._used.values())
        assert abs(sum(r._used.values()) - r.total_busy) < 1e-6

    @settings(max_examples=50, deadline=None)
    @given(st.floats(0, 1e5), st.integers(1, 200))
    def test_burst_delay_grows_linearly(self, now, n):
        """n simultaneous unit requests occupy ~n cycles of service."""
        r = Resource()
        last = max(r.acquire(now, 1.0) for _ in range(n))
        assert last - now <= n + BUCKET_CYCLES


class TestResourceGroup:
    def test_independent_members(self):
        g = ResourceGroup(3)
        assert len(g) == 3
        g.acquire(0, 0.0, 32.0)
        assert g.acquire(1, 0.0, 1.0) == 0.0  # other member unaffected

    def test_indexing(self):
        g = ResourceGroup(2)
        assert g[0] is not g[1]
        assert g[0] is g.members[0]
