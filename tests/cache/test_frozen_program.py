"""Program.freeze()/thaw() and the compiled-artifact store (level 1)."""

import pickle

import pytest

from repro import Policy
from repro.errors import FreezeError
from repro.runtime.program import (FROZEN_FORMAT, FrozenProgram, Phase,
                                   Program, Task, freeze_phase)
from repro.types import OP_LOAD, OP_STORE, OP_WB

from tests.conftest import make_machine

HEAP = 0x2000_0000


def _program(n_tasks=3):
    tasks = [Task(ops=[(OP_LOAD, HEAP + 0x100 * t), (OP_STORE, HEAP)],
                  flush_lines=[t], input_lines=[t + 7], stack_words=2)
             for t in range(n_tasks)]
    return Program("p", [Phase("ph0", tasks, code_addr=0x10000,
                               code_lines=2)],
                   expected={HEAP: 42})


class TestFreezeThaw:
    def test_round_trip_preserves_tasks(self):
        program = _program()
        thawed = program.freeze().thaw()
        assert thawed.name == program.name
        assert thawed.expected == program.expected
        for old_phase, new_phase in zip(program.phases, thawed.phases):
            assert new_phase.name == old_phase.name
            assert new_phase.code_addr == old_phase.code_addr
            assert new_phase.code_lines == old_phase.code_lines
            for old_task, new_task in zip(old_phase.tasks, new_phase.tasks):
                assert list(new_task.ops) == list(old_task.ops)
                assert list(new_task.flush_lines) == list(old_task.flush_lines)
                assert list(new_task.input_lines) == list(old_task.input_lines)
                assert new_task.stack_words == old_task.stack_words

    def test_flush_wbs_fused_into_flat_ops(self):
        frozen_phase = freeze_phase(_program().phases[0])
        # Each task's slice ends with one OP_WB per flush line.
        for i in range(frozen_phase.n_tasks):
            lo, hi = frozen_phase.bounds[i], frozen_phase.bounds[i + 1]
            tail = frozen_phase.ops[lo:hi][-len(frozen_phase.flush_lines[i]):]
            assert all(kind == OP_WB for kind, _ in tail)

    def test_after_hook_refuses_to_freeze(self):
        program = _program()
        program.phases[0].after = lambda machine: None
        with pytest.raises(FreezeError, match="after"):
            program.freeze()

    def test_format_is_stamped(self):
        assert _program().freeze().format == FROZEN_FORMAT

    def test_frozen_runs_identically_to_plain(self):
        plain = make_machine(Policy.hwcc_ideal()).run(_program(6))
        frozen = make_machine(Policy.hwcc_ideal()).run(_program(6).freeze())
        assert plain.as_dict() == frozen.as_dict()


class TestProgramStore:
    def _run(self, cache_dir, policy=None, workload="gjk", scale=0.12,
             track_data=False):
        from repro.analysis.experiments import ExperimentConfig, run_workload

        exp = ExperimentConfig(n_clusters=2, scale=scale,
                               track_data=track_data)
        stats, _machine = run_workload(workload,
                                       policy or Policy.cohesion(), exp)
        return stats

    def test_store_hit_is_bit_identical(self, cache_dir, monkeypatch):
        from repro.cache import PROGRAM_STATS

        monkeypatch.setenv("REPRO_CACHE", "0")
        fresh = self._run(cache_dir)
        monkeypatch.delenv("REPRO_CACHE")
        cold = self._run(cache_dir)
        assert PROGRAM_STATS.misses == 1 and PROGRAM_STATS.stores == 1
        warm = self._run(cache_dir)
        assert PROGRAM_STATS.hits == 1
        assert fresh.as_dict() == cold.as_dict() == warm.as_dict()

    def test_cohesion_track_data_replay(self, cache_dir):
        """Cohesion builds have machine side effects (coh_malloc converts
        regions) and track_data needs the backing image; both must replay
        bit-identically from the artifact."""
        cold = self._run(cache_dir, policy=Policy.cohesion(),
                         workload="kmeans", scale=0.25, track_data=True)
        warm = self._run(cache_dir, policy=Policy.cohesion(),
                         workload="kmeans", scale=0.25, track_data=True)
        assert cold.load_mismatches == [] and warm.load_mismatches == []
        assert cold.as_dict() == warm.as_dict()

    def test_corrupt_artifact_is_a_miss(self, cache_dir):
        from repro.cache import PROGRAM_STATS

        self._run(cache_dir)
        artifacts = list((cache_dir / "programs").rglob("*.pkl"))
        assert artifacts
        for path in artifacts:
            path.write_bytes(b"\x80corrupt")
        PROGRAM_STATS.reset()
        warm = self._run(cache_dir)
        assert PROGRAM_STATS.hits == 0 and PROGRAM_STATS.misses == 1
        assert warm.tasks_executed > 0

    def test_artifact_is_plain_data(self, cache_dir):
        """No callables in the pickle: a frozen program is flat data."""
        self._run(cache_dir)
        path = next((cache_dir / "programs").rglob("*.pkl"))
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        frozen = payload["frozen"]
        assert isinstance(frozen, FrozenProgram)
        assert all(phase.after is None for phase in frozen.phases)
