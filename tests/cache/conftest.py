"""Fixtures for the reuse-layer tests: every test gets its own cache."""

import pytest


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """A private, enabled cache root, with global counters zeroed."""
    from repro.cache import PROGRAM_STATS, RESULT_STATS

    root = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    RESULT_STATS.reset()
    PROGRAM_STATS.reset()
    return root


@pytest.fixture
def tiny_exp():
    from repro.analysis.experiments import ExperimentConfig

    return ExperimentConfig(n_clusters=2, scale=0.12)
