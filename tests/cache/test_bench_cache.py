"""Bench stays honest: cache bypassed by default, opt-in is recorded."""

import pytest

from repro.bench import BenchDocError, compare_runs, run_bench, select_specs
from repro.bench.report import format_bench_table, summary_markdown


def _specs():
    return select_specs("heat")


class TestBypassDefault:
    def test_default_bypasses_and_records_status(self, cache_dir):
        doc = run_bench(_specs(), jobs=1)
        assert doc["cache"] is False
        assert "cache_hit_rate" not in doc
        for cell in doc["cells"].values():
            assert cell["cache"] == "bypassed"
        # Nothing was consulted or stored.
        assert not (cache_dir / "results").exists()

    def test_default_bypasses_even_with_env_cache_on(self, cache_dir,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        run_bench(_specs(), jobs=1)
        assert not (cache_dir / "results").exists()


class TestOptIn:
    def test_miss_then_hit(self, cache_dir):
        cold = run_bench(_specs(), jobs=1, use_cache=True)
        assert cold["cache"] is True and cold["cache_hit_rate"] == 0.0
        assert all(c["cache"] == "miss" for c in cold["cells"].values())
        warm = run_bench(_specs(), jobs=1, use_cache=True)
        assert warm["cache_hit_rate"] == 1.0
        assert all(c["cache"] == "hit" for c in warm["cells"].values())
        # Simulated counters survive the cache round trip exactly.
        for key in cold["cells"]:
            for field in ("cycles", "ops", "tasks"):
                assert warm["cells"][key][field] == cold["cells"][key][field]

    def test_table_shows_cache_column_only_when_cached(self, cache_dir):
        plain = run_bench(_specs(), jobs=1)
        cached = run_bench(_specs(), jobs=1, use_cache=True)
        assert "cache" not in format_bench_table(plain)
        table = format_bench_table(cached)
        assert "cache" in table and "result cache ON" in table

    def test_summary_markdown_reports_hit_rate(self, cache_dir):
        run_bench(_specs(), jobs=1, use_cache=True)
        warm = run_bench(_specs(), jobs=1, use_cache=True)
        assert "hit rate 100%" in summary_markdown(warm)


class TestCompareGuard:
    def test_cached_vs_uncached_refused(self, cache_dir):
        plain = run_bench(_specs(), jobs=1)
        cached = run_bench(_specs(), jobs=1, use_cache=True)
        with pytest.raises(BenchDocError, match="not comparable"):
            compare_runs(plain, cached)
        with pytest.raises(BenchDocError, match="not comparable"):
            compare_runs(cached, plain)

    def test_flag_absent_means_uncached(self, cache_dir):
        """Old baselines predate the flag; they compare as uncached."""
        plain = run_bench(_specs(), jobs=1)
        legacy = dict(plain)
        legacy.pop("cache")
        assert compare_runs(legacy, plain).ok

    def test_like_for_like_still_compares(self, cache_dir):
        run_bench(_specs(), jobs=1, use_cache=True)
        a = run_bench(_specs(), jobs=1, use_cache=True)
        b = run_bench(_specs(), jobs=1, use_cache=True)
        assert compare_runs(a, b, threshold=100.0).ok
