"""Cached runs of every figure driver are bit-identical to fresh ones.

Each driver runs three times: fresh (cache off), cold (cache on, all
misses), warm (cache on, all hits). All three result trees -- contents
*and* key order -- must be identical; this is the golden diff the
acceptance criteria pin.
"""

import pytest

from repro.analysis.experiments import (run_directory_occupancy,
                                        run_directory_sweep,
                                        run_message_breakdown,
                                        run_performance,
                                        run_stack_only_ablation,
                                        run_useful_coherence_ops)
from repro.cache import RESULT_STATS

KERNELS = ("gjk",)

DRIVERS = [
    pytest.param(lambda exp: run_message_breakdown(
        KERNELS, exp=exp, jobs=1), id="message_breakdown"),
    pytest.param(lambda exp: run_useful_coherence_ops(
        KERNELS, (8 * 1024, 16 * 1024), exp=exp, jobs=1),
        id="useful_coherence_ops"),
    pytest.param(lambda exp: run_directory_sweep(
        KERNELS, (256, 1024), exp=exp, jobs=1), id="directory_sweep"),
    pytest.param(lambda exp: run_directory_occupancy(
        KERNELS, exp=exp, jobs=1), id="directory_occupancy"),
    pytest.param(lambda exp: run_performance(
        KERNELS, exp=exp, jobs=1), id="performance"),
    pytest.param(lambda exp: run_stack_only_ablation(
        KERNELS, exp=exp, jobs=1), id="stack_only_ablation"),
]


def _key_order(tree):
    if not isinstance(tree, dict):
        return None
    return [(key, _key_order(value)) for key, value in tree.items()]


@pytest.mark.parametrize("driver", DRIVERS)
def test_fresh_cold_warm_identical(driver, cache_dir, tiny_exp,
                                   monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")
    fresh = driver(tiny_exp)
    monkeypatch.delenv("REPRO_CACHE")
    RESULT_STATS.reset()
    cold = driver(tiny_exp)
    assert RESULT_STATS.hits == 0 and RESULT_STATS.misses > 0
    RESULT_STATS.reset()
    warm = driver(tiny_exp)
    assert RESULT_STATS.misses == 0 and RESULT_STATS.hits > 0
    assert fresh == cold == warm
    assert _key_order(fresh) == _key_order(cold) == _key_order(warm)
