"""The content-addressed result cache (level 2) and its knobs."""

import json

import pytest

from repro import Policy
from repro.analysis.parallel import Cell, run_cells
from repro.cache import (RESULT_STATS, ResultCache, cache_enabled,
                         cell_key, decode_stats, encode_stats)
from repro.errors import SimulationError


def _cell(label="gjk", **extra):
    from repro.analysis.experiments import ExperimentConfig

    exp = ExperimentConfig(n_clusters=2, scale=0.12)
    return Cell.make("gjk", Policy.swcc(), exp, label=label, **extra)


class TestKnobs:
    @pytest.mark.parametrize("raw,expected", [
        (None, True), ("", True), ("1", True), ("0", False)])
    def test_repro_cache_values(self, monkeypatch, raw, expected):
        if raw is None:
            monkeypatch.delenv("REPRO_CACHE", raising=False)
        else:
            monkeypatch.setenv("REPRO_CACHE", raw)
        assert cache_enabled() is expected

    def test_bad_repro_cache_named_in_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "maybe")
        with pytest.raises(SimulationError, match="REPRO_CACHE"):
            cache_enabled()

    def test_cache_dir_knob_wins(self, monkeypatch, tmp_path):
        from repro.cache import cache_root

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "somewhere"))
        assert cache_root() == tmp_path / "somewhere"


class TestFingerprint:
    def test_label_is_excluded(self, cache_dir):
        assert cell_key(_cell(label="a")) == cell_key(_cell(label="b"))

    def test_runner_directives_are_excluded(self, cache_dir):
        assert (cell_key(_cell(_bench_reps=3))
                == cell_key(_cell(_bench_reps=9)))

    def test_config_change_changes_key(self, cache_dir):
        assert (cell_key(_cell(l2_bytes=8 * 1024))
                != cell_key(_cell(l2_bytes=16 * 1024)))

    def test_source_hash_changes_key(self, cache_dir, monkeypatch):
        from repro.cache import srchash

        before = cell_key(_cell())
        monkeypatch.setattr(srchash, "source_tree_hash",
                            lambda: "someothertree")
        assert cell_key(_cell()) != before

    def test_unkeyable_cell_has_no_fingerprint(self, cache_dir):
        bad = _cell(no_such_machine_knob=1)
        assert ResultCache().fingerprint(bad) is None


class TestRoundTrip:
    def test_encode_decode_equals_original(self, cache_dir):
        from repro.analysis.parallel import _run_cell

        stats = _run_cell(_cell())
        decoded = decode_stats(encode_stats(stats))
        assert decoded.as_dict() == stats.as_dict()
        assert decoded == stats

    def test_put_get_round_trip(self, cache_dir):
        from repro.analysis.parallel import _run_cell

        cell = _cell()
        stats = _run_cell(cell)
        rcache = ResultCache()
        assert rcache.put(cell, stats)
        got = ResultCache().get(cell)
        assert got is not None and got.as_dict() == stats.as_dict()


class TestCorruption:
    def _populate(self, cache_dir):
        run_cells([_cell()], jobs=1)
        entries = list((cache_dir / "results").rglob("*.json"))
        assert entries
        return entries

    @pytest.mark.parametrize("damage", [
        pytest.param(lambda p: p.write_text("{not json"), id="garbage"),
        pytest.param(lambda p: p.write_text(p.read_text()[:40]),
                     id="truncated"),
        pytest.param(lambda p: p.write_text(json.dumps({"schema": 999})),
                     id="wrong-schema"),
        pytest.param(lambda p: p.write_text(
            p.read_text().replace('"cycles"', '"cycle_z"', 1)),
            id="field-renamed"),
    ])
    def test_damaged_entry_is_a_miss_not_an_error(self, cache_dir, damage):
        for path in self._populate(cache_dir):
            damage(path)
        RESULT_STATS.reset()
        results = run_cells([_cell()], jobs=1)
        assert RESULT_STATS.hits == 0 and RESULT_STATS.misses >= 1
        assert results[0].tasks_executed > 0


class TestRunCells:
    def test_hit_skips_worker_and_matches_fresh(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        fresh = run_cells([_cell()], jobs=1)
        monkeypatch.delenv("REPRO_CACHE")
        cold = run_cells([_cell()], jobs=1)
        RESULT_STATS.reset()
        warm = run_cells([_cell()], jobs=1)
        assert RESULT_STATS.hits == 1 and RESULT_STATS.misses == 0
        assert (fresh[0].as_dict() == cold[0].as_dict()
                == warm[0].as_dict())

    def test_jobs4_hits_cache_populated_by_jobs1(self, cache_dir):
        cells = [_cell(label=f"c{i}", l2_bytes=size * 1024)
                 for i, size in enumerate((8, 16, 32, 64))]
        serial = run_cells(cells, jobs=1)
        RESULT_STATS.reset()
        parallel = run_cells(cells, jobs=4)
        assert RESULT_STATS.hits == len(cells)
        assert ([s.as_dict() for s in serial]
                == [s.as_dict() for s in parallel])

    def test_progress_sees_every_cell_once(self, cache_dir):
        cells = [_cell(label=f"c{i}", l2_bytes=size * 1024)
                 for i, size in enumerate((8, 16))]
        run_cells(cells, jobs=1)  # populate
        seen = []
        run_cells(cells, jobs=1,
                  progress=lambda done, total, label, elapsed:
                  seen.append((done, total, label)))
        assert seen == [(1, 2, "c0"), (2, 2, "c1")]

    def test_partial_hits_merge_in_position_order(self, cache_dir):
        known = _cell(label="known")
        run_cells([known], jobs=1)  # populate only this one
        novel = _cell(label="novel", l2_bytes=8 * 1024)
        RESULT_STATS.reset()
        results = run_cells([novel, known], jobs=1)
        assert RESULT_STATS.hits == 1 and RESULT_STATS.misses == 1
        # Position order survives the hit completing first: the known
        # cell's result sits at index 1, where the caller put the cell.
        assert (results[1].as_dict()
                == run_cells([known], jobs=1)[0].as_dict())

    def test_cache_false_bypasses(self, cache_dir):
        run_cells([_cell()], jobs=1)  # populate
        RESULT_STATS.reset()
        run_cells([_cell()], jobs=1, cache=False)
        assert RESULT_STATS.lookups == 0

    def test_custom_worker_not_cached_by_default(self, cache_dir):
        run_cells([_cell()], jobs=1, worker=_touch_worker)
        assert not (cache_dir / "results").exists()


def _touch_worker(cell):
    return "not-run-stats"
