"""``repro cache verify``/``clear``: corrupt vs unreadable discrimination.

Regression suite for the bugfix where both maintenance entry points
swallowed bare ``Exception``: a permission error, an I/O failure, or a
directory squatting on an entry path was indistinguishable from garbage
bytes -- the audit reported "corrupt" and exited as if the scan had
covered the whole store. Content damage and access failure now land in
separate buckets with separate exit codes (1 vs 2).

These tests run as root in CI, so "unreadable" is provoked with a
*directory* named like an entry (``IsADirectoryError`` on read), not
with chmod -- root ignores file modes.
"""

import json

import pytest

from repro import Policy
from repro.analysis.parallel import Cell, run_cells
from repro.cache import ResultCache, clear_cache, verify_cache
from repro.cache.manage import VerifyReport
from repro.cli import main
from repro.errors import CacheAccessError


def _cell(label="gjk", **extra):
    from repro.analysis.experiments import ExperimentConfig

    exp = ExperimentConfig(n_clusters=2, scale=0.12)
    return Cell.make("gjk", Policy.swcc(), exp, label=label, **extra)


@pytest.fixture
def populated(cache_dir):
    """A cache holding one real result (and its frozen program)."""
    run_cells([_cell()], jobs=1)
    assert list((cache_dir / "results").rglob("*.json"))
    return cache_dir


class TestVerifyClassification:
    def test_clean_cache_is_empty_report(self, populated):
        report = verify_cache(populated)
        assert not report
        assert report.corrupt == [] and report.unreadable == []

    def test_garbage_bytes_are_corrupt_not_unreadable(self, populated):
        entry = next((populated / "results").rglob("*.json"))
        entry.write_text("{definitely not json")
        report = verify_cache(populated)
        assert len(report.corrupt) == 1 and not report.unreadable
        assert "corrupt JSON" in report.corrupt[0]

    def test_digest_mismatch_is_corrupt(self, populated):
        entry = next((populated / "results").rglob("*.json"))
        moved = entry.with_name("0" * 64 + ".json")
        moved.write_text(entry.read_text())
        entry.unlink()
        report = verify_cache(populated)
        assert any("digest" in p for p in report.corrupt)

    def test_stray_tmp_file_is_corrupt_debris(self, populated):
        shard = next((populated / "results").rglob("*.json")).parent
        (shard / "entry.json.tmp1234").write_text("half a write")
        report = verify_cache(populated)
        assert any("stray file" in p for p in report.corrupt)

    def test_directory_squatting_on_entry_is_unreadable(self, populated):
        shard = next((populated / "results").rglob("*.json")).parent
        (shard / ("e" * 64 + ".json")).mkdir()
        report = verify_cache(populated)
        assert len(report.unreadable) == 1 and not report.corrupt
        assert "directory" in report.unreadable[0]

    def test_oserror_while_reading_is_unreadable(self, populated,
                                                 monkeypatch):
        import pathlib

        real = pathlib.Path.read_bytes

        def flaky(self):
            if self.suffix == ".json":
                raise OSError("simulated I/O error")
            return real(self)

        monkeypatch.setattr(pathlib.Path, "read_bytes", flaky)
        report = verify_cache(populated)
        assert any("simulated I/O error" in p for p in report.unreadable)
        assert not report.corrupt

    def test_problems_lists_unreadable_first(self):
        report = VerifyReport(corrupt=["c"], unreadable=["u"])
        assert report.problems == ["u", "c"]
        assert len(report) == 2 and bool(report)
        assert report.as_dict() == {"corrupt": ["c"], "unreadable": ["u"]}


class TestVerifyExitCodes:
    """The CLI grades the two buckets differently: findings exit 1,
    an incomplete audit exits 2 (lint-style environment failure)."""

    @pytest.fixture(autouse=True)
    def _own_cache(self, cache_dir):
        pass

    def _populate(self):
        run_cells([_cell()], jobs=1)

    def test_corrupt_exits_1(self, cache_dir, capsys):
        self._populate()
        next((cache_dir / "results").rglob("*.json")).write_text("{broken")
        assert main(["cache", "verify"]) == 1
        out = capsys.readouterr().out
        assert "corrupt" in out and "1 corrupt, 0 unreadable" in out

    def test_unreadable_exits_2_even_with_corrupt_present(self, cache_dir,
                                                          capsys):
        self._populate()
        entry = next((cache_dir / "results").rglob("*.json"))
        entry.write_text("{broken")
        (entry.parent / ("f" * 64 + ".json")).mkdir()
        assert main(["cache", "verify"]) == 2
        out = capsys.readouterr().out
        assert "UNREADABLE" in out and "1 corrupt, 1 unreadable" in out

    def test_json_report_carries_both_buckets(self, cache_dir, capsys):
        self._populate()
        entry = next((cache_dir / "results").rglob("*.json"))
        entry.write_text("{broken")
        assert main(["cache", "verify", "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {"corrupt", "unreadable"}
        assert len(doc["corrupt"]) == 1 and doc["unreadable"] == []


class TestClear:
    def test_clear_failure_raises_cache_access_error(self, populated,
                                                     monkeypatch):
        import shutil

        def fake_rmtree(path, onerror=None, **kwargs):
            onerror(None, str(path) + "/stuck.json",
                    (OSError, OSError("device busy"), None))

        monkeypatch.setattr(shutil, "rmtree", fake_rmtree)
        with pytest.raises(CacheAccessError, match="device busy"):
            clear_cache(populated)

    def test_clear_failure_is_usage_error_at_cli(self, populated,
                                                 monkeypatch, capsys):
        import shutil

        def fake_rmtree(path, onerror=None, **kwargs):
            onerror(None, str(path), (OSError, OSError("nope"), None))

        monkeypatch.setattr(shutil, "rmtree", fake_rmtree)
        assert main(["cache", "clear"]) == 2
        assert "could not remove" in capsys.readouterr().err


class TestSessionAccounting:
    """Regression: unkeyable lookups and failed stores were invisible --
    ``get()`` returned early without counting anything and ``put()``
    failures vanished, so a sweep full of unkeyable cells reported a
    clean 0/0 cache line."""

    def test_unkeyable_get_counts_skipped_not_miss(self, cache_dir):
        from repro.cache import RESULT_STATS

        bad = _cell(no_such_machine_knob=1)
        rcache = ResultCache()
        assert rcache.get(bad) is None
        assert rcache.skipped == 1 and rcache.misses == 0
        assert RESULT_STATS.skipped == 1 and RESULT_STATS.misses == 0
        assert RESULT_STATS.lookups == 1
        assert RESULT_STATS.hit_rate == 0.0

    def test_unkeyable_put_counts_failure(self, cache_dir):
        from repro.analysis.parallel import _run_cell
        from repro.cache import RESULT_STATS

        stats = _run_cell(_cell())
        rcache = ResultCache()
        assert rcache.put(_cell(no_such_machine_knob=1), stats) is False
        assert rcache.put_failures == 1
        assert RESULT_STATS.put_failures == 1
        assert RESULT_STATS.stores == 0

    def test_non_runstats_put_counts_failure(self, cache_dir):
        rcache = ResultCache()
        assert rcache.put(_cell(), "not-run-stats") is False
        assert rcache.put_failures == 1

    def test_write_error_put_counts_failure(self, cache_dir, monkeypatch):
        import os

        from repro.analysis.parallel import _run_cell
        from repro.cache import RESULT_STATS

        stats = _run_cell(_cell())
        RESULT_STATS.reset()

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", broken_replace)
        rcache = ResultCache()
        assert rcache.put(_cell(), stats) is False
        assert rcache.put_failures == 1 and rcache.stores == 0
        assert RESULT_STATS.put_failures == 1

    def test_cache_stats_cli_surfaces_session_counters(self, cache_dir,
                                                       capsys):
        from repro.cache import RESULT_STATS

        ResultCache().get(_cell(no_such_machine_knob=1))
        assert RESULT_STATS.skipped == 1
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "skipped=1" in out and "put_failures=0" in out

    def test_stats_as_dict_shape(self):
        from repro.cache.results import ReuseStats

        stats = ReuseStats(hits=3, misses=1, skipped=2, stores=3,
                           put_failures=1)
        doc = stats.as_dict()
        assert doc["hit_rate"] == pytest.approx(0.5)
        assert doc["skipped"] == 2 and doc["put_failures"] == 1
        stats.reset()
        assert stats.lookups == 0 and stats.as_dict()["hit_rate"] == 0.0
