"""Section 4.4 directory area estimates."""

import pytest

from repro import MachineConfig
from repro.analysis.area import (DirectoryAreaModel, dir4b_overhead,
                                 duplicate_tag_overhead, full_map_overhead)

MB = 1024 * 1024


class TestPaperNumbers:
    """The baseline machine reproduces the paper's Section 4.4 figures."""

    def test_on_die_lines(self):
        model = DirectoryAreaModel()
        assert model.on_die_lines == 256 * 1024          # "256K 32-byte lines"
        assert model.l2_aggregate_bytes == 8 * MB        # "8 MB total"
        assert model.sparse_entries == 512 * 1024        # 16K x 32 banks

    def test_full_map_about_9mb_113_percent(self):
        estimate = full_map_overhead()
        # paper: 9.28 MB (113% of L2); exact bit accounting gives 9.13 MB
        assert estimate.total_mb == pytest.approx(9.28, rel=0.03)
        assert estimate.fraction_of_l2 == pytest.approx(1.13, rel=0.03)

    def test_dir4b_exactly_2_88mb(self):
        estimate = dir4b_overhead()
        # 46 bits x 512K entries = 2.88 MB (paper: 2.88 MB, 35.1%)
        assert estimate.total_mb == pytest.approx(2.88, rel=0.01)
        assert estimate.fraction_of_l2 == pytest.approx(0.351, rel=0.03)

    def test_duplicate_tags_exactly_736kb(self):
        estimate = duplicate_tag_overhead()
        assert estimate.total_bytes == 736 * 1024
        assert estimate.fraction_of_l2 == pytest.approx(0.0898, rel=0.01)

    def test_duplicate_tag_replication_scales_linearly(self):
        one = duplicate_tag_overhead(replicas=1)
        eight = duplicate_tag_overhead(replicas=8)
        assert eight.total_bytes == 8 * one.total_bytes

    def test_duplicate_tag_associativity_2048(self):
        assert DirectoryAreaModel().duplicate_tag_associativity() == 2048

    def test_replica_bounds(self):
        model = DirectoryAreaModel()
        with pytest.raises(ValueError):
            model.duplicate_tags(0)
        with pytest.raises(ValueError):
            model.duplicate_tags(33)


class TestGeneralisation:
    def test_scales_with_cluster_count(self):
        small = DirectoryAreaModel(MachineConfig().scaled(32))
        big = DirectoryAreaModel(MachineConfig())
        assert small.full_map().total_bytes < big.full_map().total_bytes

    def test_summary_has_four_entries(self):
        summary = DirectoryAreaModel().summary()
        assert len(summary) == 4
        assert all(str(e) for e in summary)

    def test_dir4b_cheaper_than_full_map(self):
        model = DirectoryAreaModel()
        assert model.dir4b().total_bytes < model.full_map().total_bytes
