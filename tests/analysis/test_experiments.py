"""Experiment drivers on tiny configurations."""

import pytest

from repro.analysis.experiments import (ExperimentConfig, figure10_policies,
                                        run_directory_occupancy,
                                        run_directory_sweep,
                                        run_message_breakdown,
                                        run_performance,
                                        run_stack_only_ablation,
                                        run_useful_coherence_ops,
                                        standard_policies)
from repro.analysis.report import (MESSAGE_HEADERS, format_table,
                                   message_breakdown_rows,
                                   short_message_headers)
from repro.config import Policy

TINY = ExperimentConfig(n_clusters=2, scale=0.12)
KERNELS = ("gjk", "mri")


class TestDrivers:
    def test_message_breakdown(self):
        results = run_message_breakdown(KERNELS, exp=TINY)
        assert set(results) == set(KERNELS)
        for per_policy in results.values():
            assert set(per_policy) == set(standard_policies())
            for stats in per_policy.values():
                assert stats.total_messages > 0

    def test_useful_coherence_ops_monotone_data(self):
        results = run_useful_coherence_ops(("sobel",),
                                           l2_sizes=(8 * 1024, 64 * 1024),
                                           exp=TINY)
        points = results["sobel"]
        for entry in points.values():
            assert 0.0 <= entry["useful_all"] <= 1.0
            assert entry["inv_issued"] + entry["wb_issued"] > 0
        # bigger caches keep more lines alive until their coherence op
        assert points[64 * 1024]["useful_all"] >= points[8 * 1024]["useful_all"]

    def test_directory_sweep(self):
        results = run_directory_sweep(("gjk",), sizes=(64, 4096),
                                      exp=TINY)
        sweep = results["gjk"]
        assert set(sweep) == {64, 4096}
        assert all(v > 0 for v in sweep.values())
        assert sweep[64] >= sweep[4096] * 0.95  # smaller is never faster

    def test_directory_sweep_hybrid_flat(self):
        hwcc = run_directory_sweep(("heat",), sizes=(64,), exp=TINY)
        cohesion = run_directory_sweep(("heat",), sizes=(64,), hybrid=True,
                                       exp=TINY)
        assert cohesion["heat"][64] < hwcc["heat"][64]

    def test_directory_occupancy(self):
        results = run_directory_occupancy(("heat",), exp=TINY)
        entry = results["heat"]
        assert entry["HWcc"]["avg"] > entry["Cohesion"]["avg"]
        assert entry["HWcc"]["max"] >= entry["HWcc"]["avg"]
        assert set(entry["HWcc"]["by_class"])  # classified

    def test_performance_normalized_to_cohesion(self):
        results = run_performance(("mri",), exp=TINY)
        row = results["mri"]
        assert set(row) == set(figure10_policies())
        assert row["Cohesion"] == pytest.approx(1.0)
        assert all(v > 0 for v in row.values())

    def test_stack_only_ablation_ordering(self):
        results = run_stack_only_ablation(("heat",), exp=TINY)
        row = results["heat"]
        assert row["Cohesion"] <= row["StackOnly"] <= row["HWcc"] * 1.05
        assert 0.0 <= row["stack_share_of_hwcc"] <= 1.0


class TestExperimentConfig:
    def test_from_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.delenv("REPRO_CLUSTERS", raising=False)
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        exp = ExperimentConfig.from_env()
        assert exp.n_clusters == 4 and exp.scale == 1.0

    def test_from_env_custom(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTERS", "8")
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        exp = ExperimentConfig.from_env()
        assert exp.n_clusters == 8 and exp.scale == 0.5

    def test_from_env_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert ExperimentConfig.from_env().n_clusters == 128

    @pytest.mark.parametrize("variable,value", [
        ("REPRO_CLUSTERS", "four"), ("REPRO_CLUSTERS", "0"),
        ("REPRO_CLUSTERS", "-2"), ("REPRO_CLUSTERS", "2.5"),
        ("REPRO_SCALE", "big"), ("REPRO_SCALE", "0"),
        ("REPRO_SCALE", "-1.5"), ("REPRO_FULL", "yes"),
    ])
    def test_from_env_bad_values_name_the_variable(self, monkeypatch,
                                                   variable, value):
        from repro.errors import SimulationError

        monkeypatch.setenv(variable, value)
        with pytest.raises(SimulationError, match=variable):
            ExperimentConfig.from_env()

    def test_machine_config_overrides(self):
        exp = ExperimentConfig(n_clusters=2)
        config = exp.machine_config(l2_bytes=8 * 1024)
        assert config.l2_bytes == 8 * 1024
        assert config.n_clusters == 2

    def test_standard_policies_are_the_four_design_points(self):
        policies = standard_policies()
        assert list(policies) == ["SWcc", "Cohesion", "HWccIdeal", "HWccReal"]

    def test_figure10_has_six_configs(self):
        assert len(figure10_policies()) == 6


class TestReport:
    def test_format_table_aligns(self):
        table = format_table(["name", "value"], [["a", 1], ["bb", 2.5]],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_message_rows_normalized(self):
        results = run_message_breakdown(("gjk",), exp=TINY)["gjk"]
        rows = message_breakdown_rows(results, normalize_to="SWcc")
        headers = short_message_headers()
        assert len(headers) == len(rows[0])
        swcc_row = next(r for r in rows if r[0] == "SWcc")
        assert swcc_row[-1] == pytest.approx(1.0)
        assert len(MESSAGE_HEADERS) == len(headers)
