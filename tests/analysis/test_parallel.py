"""Parallel sweeps are bit-identical to serial ones, and fail loudly."""

import pytest

from repro.analysis.experiments import (ExperimentConfig,
                                        run_directory_occupancy,
                                        run_directory_sweep,
                                        run_message_breakdown,
                                        run_performance,
                                        run_stack_only_ablation,
                                        run_useful_coherence_ops)
from repro.analysis.parallel import (Cell, CellSweep, parse_jobs,
                                     resolve_jobs, run_cells,
                                     stderr_progress)
from repro.errors import SimulationError

TINY = ExperimentConfig(n_clusters=2, scale=0.12)
KERNELS = ("gjk", "mri")


@pytest.fixture(autouse=True)
def _cache_off(monkeypatch):
    """These tests pin the *execution* paths (pool scheduling, failure
    attribution, progress accounting), so the result cache must not
    short-circuit any cell; tests/cache covers the cached paths."""
    monkeypatch.setenv("REPRO_CACHE", "0")

DRIVERS = [
    pytest.param(lambda jobs: run_message_breakdown(
        KERNELS, exp=TINY, jobs=jobs), id="message_breakdown"),
    pytest.param(lambda jobs: run_useful_coherence_ops(
        KERNELS, (8 * 1024, 16 * 1024), exp=TINY, jobs=jobs),
        id="useful_coherence_ops"),
    pytest.param(lambda jobs: run_directory_sweep(
        KERNELS, (256, 1024), exp=TINY, jobs=jobs), id="directory_sweep"),
    pytest.param(lambda jobs: run_directory_occupancy(
        KERNELS, exp=TINY, jobs=jobs), id="directory_occupancy"),
    pytest.param(lambda jobs: run_performance(
        KERNELS, exp=TINY, jobs=jobs), id="performance"),
    pytest.param(lambda jobs: run_stack_only_ablation(
        KERNELS, exp=TINY, jobs=jobs), id="stack_only_ablation"),
]


class TestDeterminism:
    """Every driver gives identical results at jobs=1 and jobs=4.

    Identity covers contents *and* iteration order of the result dicts
    (the merge replay is append-ordered), so downstream table rendering
    cannot observe how the cells were scheduled.
    """

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_parallel_matches_serial(self, driver):
        serial = driver(1)
        parallel = driver(4)
        assert serial == parallel
        assert _key_order(serial) == _key_order(parallel)


def _key_order(tree):
    if not isinstance(tree, dict):
        return tree if not hasattr(tree, "cycles") else None
    return [(key, _key_order(value)) for key, value in tree.items()]


class TestJobResolution:
    def test_explicit_wins(self):
        assert resolve_jobs(3) == 3

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_zero_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(SimulationError, match="jobs must be"):
            resolve_jobs(-1)

    @pytest.mark.parametrize("raw", ["", "x", "1.5", "-2"])
    def test_bad_env_named_in_error(self, raw):
        with pytest.raises(SimulationError, match="REPRO_JOBS"):
            parse_jobs(raw)


class TestWorkerFailure:
    """A failing cell surfaces its original exception, serial or pooled."""

    def test_serial_raises_original(self):
        with pytest.raises(KeyError, match="no-such-kernel"):
            run_cells([_bad_cell()], jobs=1)

    def test_pool_raises_original(self):
        good = Cell.make("gjk", _swcc(), TINY)
        with pytest.raises(KeyError, match="no-such-kernel"):
            run_cells([good, _bad_cell(), good], jobs=4)

    def test_pool_names_failing_cell(self, capsys):
        good = Cell.make("gjk", _swcc(), TINY)
        with pytest.raises(KeyError):
            run_cells([good, _bad_cell()], jobs=2)
        assert "no-such-kernel" in capsys.readouterr().err


def _bad_cell():
    return Cell.make("no-such-kernel", _swcc(), TINY)


def _swcc():
    from repro.config import Policy
    return Policy.swcc()


class TestProgress:
    def test_serial_progress_reports_each_cell(self):
        seen = []
        cells = [Cell.make("gjk", _swcc(), TINY, label=f"cell{i}")
                 for i in range(2)]
        run_cells(cells, jobs=1,
                  progress=lambda done, total, label, elapsed:
                  seen.append((done, total, label)))
        assert seen == [(1, 2, "cell0"), (2, 2, "cell1")]

    def test_stderr_progress_format(self, capsys):
        stderr_progress("sweep")(3, 10, "kmeans/SWcc", 6.0)
        err = capsys.readouterr().err
        assert "sweep: cell 3/10 (kmeans/SWcc)" in err
        assert "elapsed 6.0s" in err and "ETA 14.0s" in err


def _carry_worker(cell):
    """Pool-crash choreography, keyed by label (module-level: picklable).

    ``good`` logs one execution record and returns. ``poison`` waits for
    a marker that the *parent* drops once it has retrieved ``good``'s
    result (the progress callback fires after retrieval), then
    hard-kills its worker process -- breaking the pool strictly after
    ``good``'s completion was observed. Run in the parent instead (the
    serial fallback), ``poison`` computes normally.
    """
    import multiprocessing
    import os
    import pathlib
    import time
    import uuid

    base = pathlib.Path(dict(cell.config_extra)["_dir"])
    if cell.label == "good":
        (base / f"exec-{uuid.uuid4().hex}").write_text("1")
        return "good-result"
    deadline = time.monotonic() + 30
    while not (base / "good-retrieved").exists():
        if time.monotonic() > deadline:  # pragma: no cover - hang guard
            raise RuntimeError("marker never appeared")
        time.sleep(0.01)
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return "poison-serial"


class TestBrokenPoolCarry:
    """Regression: the serial fallback after a mid-run pool crash used
    to discard every already-completed future and restart from zero --
    re-simulating finished cells and double-emitting their progress."""

    def _cells(self, tmp_path):
        return [Cell.make("gjk", _swcc(), TINY, label=label,
                          _dir=str(tmp_path))
                for label in ("good", "poison")]

    def _run(self, tmp_path):
        seen = []

        def progress(done, total, label, elapsed):
            seen.append((done, total, label))
            if label == "good":
                (tmp_path / "good-retrieved").write_text("1")

        results = run_cells(self._cells(tmp_path), jobs=2,
                            worker=_carry_worker, cache=False,
                            progress=progress)
        return results, seen

    def test_completed_results_carry_over(self, tmp_path, capsys):
        results, _seen = self._run(tmp_path)
        assert results == ["good-result", "poison-serial"]
        executions = list(tmp_path.glob("exec-*"))
        assert len(executions) == 1, "completed cell was re-run"
        err = capsys.readouterr().err
        assert "falling back to serial execution" in err
        assert "1 completed cell(s) carried over" in err

    def test_progress_resumes_not_restarts(self, tmp_path):
        _results, seen = self._run(tmp_path)
        dones = [done for done, _total, _label in seen]
        assert dones == sorted(set(dones)), f"progress double-emitted: {seen}"
        assert seen == [(1, 2, "good"), (2, 2, "poison")]

    def test_crash_before_any_completion_restarts_cleanly(self, tmp_path):
        # Marker pre-dropped: poison dies immediately, good's result may
        # or may not survive the broken pool -- either way every result
        # must land exactly once at its position.
        (tmp_path / "good-retrieved").write_text("1")
        results = run_cells(self._cells(tmp_path), jobs=2,
                            worker=_carry_worker, cache=False)
        assert results == ["good-result", "poison-serial"]


class TestCellSweep:
    def test_merge_replay_order(self):
        sweep = CellSweep(jobs=4)
        order = []
        for i in range(4):
            sweep.add(Cell.make("gjk", _swcc(), TINY, label=f"c{i}"),
                      lambda stats, i=i: order.append(i))
        sweep.run()
        assert order == [0, 1, 2, 3]
