"""Reproduction self-check scorecard."""

import pytest

from repro.analysis.experiments import ExperimentConfig
from repro.analysis.validate import (ClaimResult, format_scorecard,
                                     run_validation)


class TestClaimResult:
    def test_str_pass_fail(self):
        ok = ClaimResult("thing holds", "Figure 2", True, "1.5x")
        bad = ClaimResult("thing holds", "Figure 2", False, "0.5x")
        assert str(ok).startswith("[PASS]")
        assert str(bad).startswith("[FAIL]")
        assert "Figure 2" in str(ok)

    def test_format_scorecard_counts(self):
        results = [ClaimResult("a", "s", True, "m"),
                   ClaimResult("b", "s", False, "m")]
        text = format_scorecard(results)
        assert "1/2 claims reproduced" in text


@pytest.mark.slow
class TestRunValidation:
    def test_all_claims_pass_at_small_scale(self):
        exp = ExperimentConfig(n_clusters=2, scale=1.0)
        seen = []
        results = run_validation(exp, progress=seen.append)
        assert seen  # progress callbacks fired
        failing = [r for r in results if not r.passed]
        assert failing == [], format_scorecard(results)
        assert len(results) == 8

    def test_undersized_scale_is_clamped(self):
        exp = ExperimentConfig(n_clusters=1, scale=0.01)
        results = run_validation(exp, kernels=("sobel", "kmeans"))
        # the run completes and grades every claim even from a tiny request
        assert len(results) == 8
