"""Report rendering helpers."""

from repro.analysis.report import (ascii_bar_chart, format_table,
                                   grouped_bar_chart)


class TestFormatTable:
    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "b" in table

    def test_numeric_formatting(self):
        table = format_table(["k", "v"], [["big", 123456], ["small", 1.5],
                                          ["huge_float", 1234.5]])
        assert "123,456" in table
        assert "1.500" in table
        assert "1,234" in table  # big floats rendered with separators

    def test_first_column_left_aligned(self):
        table = format_table(["name", "v"], [["x", 1], ["longer", 2]])
        lines = table.splitlines()
        assert lines[-2].startswith("x ")
        assert lines[-1].startswith("longer")


class TestAsciiBarChart:
    def test_scaling_to_peak(self):
        chart = ascii_bar_chart([("a", 1.0), ("b", 2.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_baseline_marked(self):
        chart = ascii_bar_chart([("swcc", 1.0), ("hwcc", 1.8)])
        assert "(baseline)" in chart.splitlines()[0]
        assert "(baseline)" not in chart.splitlines()[1]

    def test_title_and_empty(self):
        assert ascii_bar_chart([], title="t") == "t"
        assert ascii_bar_chart([("a", 0.0)], title="t").startswith("t")

    def test_minimum_one_hash(self):
        chart = ascii_bar_chart([("tiny", 0.001), ("big", 100.0)], width=20)
        assert "#" in chart.splitlines()[0]

    def test_labels_aligned(self):
        chart = ascii_bar_chart([("a", 1.0), ("longer", 1.0)])
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")


class TestGroupedBarChart:
    def test_groups_and_order(self):
        chart = grouped_bar_chart(
            {"heat": {"SWcc": 1.0, "HWcc": 1.8},
             "dmm": {"SWcc": 1.0, "HWcc": 1.4}},
            order=["SWcc", "HWcc"], title="Figure 2")
        assert chart.startswith("Figure 2")
        assert "[heat]" in chart and "[dmm]" in chart
        heat_block = chart.split("[heat]")[1].split("[dmm]")[0]
        assert heat_block.index("SWcc") < heat_block.index("HWcc")

    def test_missing_config_skipped(self):
        chart = grouped_bar_chart({"x": {"A": 1.0}}, order=["A", "B"])
        assert "B" not in chart
