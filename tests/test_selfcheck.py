"""The repo-invariant meta-lint (tools/selfcheck.py) and its rules."""

import pathlib
import subprocess
import sys
import textwrap

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import selfcheck  # noqa: E402


class TestTreeIsClean:
    def test_current_tree_passes(self):
        assert selfcheck.run_all() == []

    def test_cli_exit_code(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "selfcheck.py")],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout


def fake_tree(tmp_path, cluster_src, executor_src, vec_src=None):
    root = tmp_path / "src" / "repro"
    (root / "sim").mkdir(parents=True)
    (root / "runtime").mkdir(parents=True)
    (root / "sim" / "cluster.py").write_text(textwrap.dedent(cluster_src))
    (root / "runtime" / "executor.py").write_text(
        textwrap.dedent(executor_src))
    if vec_src is None:
        vec_src = GOOD_VEC
    (root / "runtime" / "vec.py").write_text(textwrap.dedent(vec_src))
    return root


GOOD_CLUSTER = """
    class Cluster:
        def load(self, addr):
            if obs.active:
                obs.emit(ObsEvent(0, EV_LOAD, addr))
        def store(self, addr):
            if obs.active:
                obs.emit(ObsEvent(0, EV_STORE, addr))
        def ifetch(self, addr):
            if obs.active:
                obs.emit(ObsEvent(0, EV_IFETCH, addr))
        def atomic(self, addr):
            if obs.active:
                obs.emit(ObsEvent(0, EV_ATOMIC, addr))
        def flush_line(self, line):
            if obs.active:
                obs.emit(ObsEvent(0, EV_FLUSH, line))
        def invalidate_line(self, line):
            if obs.active:
                obs.emit(ObsEvent(0, EV_INV, line))
"""

GOOD_EXECUTOR = """
    class BspExecutor:
        def _execute_slice(self, cluster, ops, obs_active):
            for op in ops:
                kind = op[0]
                if kind == OP_LOAD:
                    entry = self.l1_sets.get(op[1])
                    if entry is None:
                        cluster.load(op[1])
                    elif obs_active:
                        obs.emit(ObsEvent(0, EV_LOAD, op[1]))
                elif kind == OP_STORE:
                    cluster.store(op[1])
                elif kind == OP_IFETCH:
                    cluster.ifetch(op[1])
                elif kind == OP_ATOMIC:
                    cluster.atomic(op[1])
                elif kind == OP_WB:
                    cluster.flush_line(op[1])
                elif kind == OP_INV:
                    cluster.invalidate_line(op[1])
"""


#: The vec backend's per-op fallback carries the same dispatch shape as
#: the interpreter, so the emit-hook rule pins it identically.
GOOD_VEC = GOOD_EXECUTOR.replace("BspExecutor", "VecExecutor")


class TestS001EmitHooks:
    def test_well_formed_tree_passes(self, tmp_path):
        root = fake_tree(tmp_path, GOOD_CLUSTER, GOOD_EXECUTOR)
        assert selfcheck.check_emit_hooks(root) == []

    def test_vec_fast_path_dropping_its_hook_flagged(self, tmp_path):
        broken = GOOD_VEC.replace(
            """\
                    elif obs_active:
                        obs.emit(ObsEvent(0, EV_LOAD, op[1]))
""", "")
        root = fake_tree(tmp_path, GOOD_CLUSTER, GOOD_EXECUTOR, broken)
        findings = selfcheck.check_emit_hooks(root)
        assert any(f.rule == "S001" and "runtime/vec.py" in f.path
                   and "OP_LOAD" in f.message and "EV_LOAD" in f.message
                   for f in findings)

    def test_cluster_method_losing_its_emit_flagged(self, tmp_path):
        broken = GOOD_CLUSTER.replace(
            """\
        def store(self, addr):
            if obs.active:
                obs.emit(ObsEvent(0, EV_STORE, addr))
""",
            """\
        def store(self, addr):
            pass
""")
        root = fake_tree(tmp_path, broken, GOOD_EXECUTOR)
        findings = selfcheck.check_emit_hooks(root)
        assert any("Cluster.store" in f.message and "EV_STORE" in f.message
                   for f in findings)

    def test_unguarded_emit_flagged(self, tmp_path):
        broken = GOOD_CLUSTER.replace(
            """\
            if obs.active:
                obs.emit(ObsEvent(0, EV_FLUSH, line))
""",
            """\
            obs.emit(ObsEvent(0, EV_FLUSH, line))
""")
        root = fake_tree(tmp_path, broken, GOOD_EXECUTOR)
        findings = selfcheck.check_emit_hooks(root)
        assert any("not guarded" in f.message for f in findings)

    def test_fast_path_dropping_its_hook_flagged(self, tmp_path):
        # Inline the load against the hoisted L1 sets but forget the
        # EV_LOAD emit: inlined ops would vanish from the bus.
        broken = GOOD_EXECUTOR.replace(
            """\
                if kind == OP_LOAD:
                    entry = self.l1_sets.get(op[1])
                    if entry is None:
                        cluster.load(op[1])
                    elif obs_active:
                        obs.emit(ObsEvent(0, EV_LOAD, op[1]))
""",
            """\
                if kind == OP_LOAD:
                    entry = self.l1_sets.get(op[1])
                    if entry is None:
                        cluster.load(op[1])
""")
        root = fake_tree(tmp_path, GOOD_CLUSTER, broken)
        findings = selfcheck.check_emit_hooks(root)
        assert any(f.rule == "S001" and "OP_LOAD" in f.message
                   and "EV_LOAD" in f.message for f in findings)

    def test_branch_bypassing_cluster_without_hook_flagged(self, tmp_path):
        broken = GOOD_EXECUTOR.replace("cluster.store(op[1])", "pass")
        root = fake_tree(tmp_path, GOOD_CLUSTER, broken)
        findings = selfcheck.check_emit_hooks(root)
        assert any("OP_STORE" in f.message and "cluster.store" in f.message
                   for f in findings)

    def test_missing_dispatch_branch_flagged(self, tmp_path):
        broken = GOOD_EXECUTOR.replace(
            """\
                elif kind == OP_INV:
                    cluster.invalidate_line(op[1])
""", "")
        root = fake_tree(tmp_path, GOOD_CLUSTER, broken)
        findings = selfcheck.check_emit_hooks(root)
        assert any("OP_INV" in f.message for f in findings)


class TestS002MeasuredPaths:
    def scan(self, body):
        return selfcheck.scan_measured_path(textwrap.dedent(body), "mod.py")

    @pytest.mark.parametrize("call", [
        "time.time()", "time.perf_counter()", "time.monotonic()",
        "time.process_time()", "datetime.datetime.now()",
        "datetime.datetime.utcnow()",
    ])
    def test_wall_clock_calls_flagged(self, call):
        [finding] = self.scan(f"import time, datetime\nx = {call}\n")
        assert finding.rule == "S002" and "wall-clock" in finding.message

    def test_from_import_of_clock_flagged(self):
        [finding] = self.scan("from time import perf_counter\n")
        assert "perf_counter" in finding.message

    @pytest.mark.parametrize("call", [
        "random.random()", "random.randrange(8)", "random.shuffle(x)",
        "np.random.rand(3)", "numpy.random.randint(4)",
        "np.random.default_rng()",  # unseeded: fresh OS entropy
        "random.Random()",
    ])
    def test_global_rng_calls_flagged(self, call):
        [finding] = self.scan(f"x = {call}\n")
        assert finding.rule == "S002" and "RNG" in finding.message

    @pytest.mark.parametrize("body", [
        "r = random.Random(42)\nx = r.random()\n",
        "g = np.random.default_rng(7)\nx = g.normal()\n",
        "g = np.random.default_rng(seed=7)\n",
        "t = self.clock.now()\n",          # simulated clock, not time.*
        "import time\n",                    # import alone is fine
    ])
    def test_seeded_and_simulated_forms_allowed(self, body):
        assert self.scan(body) == []

    def test_allowlist_excludes_host_side_tooling(self):
        findings = selfcheck.check_measured_paths()
        assert findings == []
        # The harness genuinely reads the wall clock; the allowlist is
        # what keeps the tree green, not an absence of clock reads.
        harness = (selfcheck.SRC_ROOT / "bench" / "harness.py").read_text()
        assert "perf_counter" in harness


GOOD_PRESETS = '''
ACTION_KINDS = ("load", "store", "wb")
'''

GOOD_ACTIONS = '''
def candidates(model):
    out = []
    for kind in model.alphabet:
        if kind == "load":
            out.append(Action("load", 0, 0, 0))
        elif kind in ("store", "wb"):
            out.append(Action(kind, 0, 0, -1))
    return out
'''

GOOD_FOOTPRINTS = '''
FOOTPRINTS = {
    "load": KindFootprint(touches_lru=True),
    "store": KindFootprint(touches_lru=True),
    "wb": KindFootprint(),
}
'''


class TestS003FootprintTable:
    def scan(self, presets=GOOD_PRESETS, actions=GOOD_ACTIONS,
             footprints=GOOD_FOOTPRINTS):
        return selfcheck.scan_footprint_table(presets, actions, footprints)

    def test_real_tree_passes(self):
        assert selfcheck.check_footprint_table() == []

    def test_complete_table_passes(self):
        assert self.scan() == []

    def test_kind_missing_from_table_flagged(self):
        broken = GOOD_FOOTPRINTS.replace(
            '    "wb": KindFootprint(),\n', "")
        findings = self.scan(footprints=broken)
        assert any(f.rule == "S003" and "'wb'" in f.message
                   and "no entry" in f.message for f in findings)

    def test_kind_introduced_in_actions_needs_entry(self):
        # A new Action("flush", ...) constructed only in actions.py --
        # never added to ACTION_KINDS -- still needs a footprint.
        grown = GOOD_ACTIONS + '''
def extra(model):
    return Action("flush", 0, 0, -1)
'''
        findings = self.scan(actions=grown)
        assert any("'flush'" in f.message and "no entry" in f.message
                   for f in findings)

    def test_stale_table_entry_flagged(self):
        stale = GOOD_FOOTPRINTS.replace(
            '    "wb": KindFootprint(),\n',
            '    "wb": KindFootprint(),\n'
            '    "prefetch": KindFootprint(),\n')
        findings = self.scan(footprints=stale)
        assert any("'prefetch'" in f.message and "stale" in f.message
                   for f in findings)

    def test_missing_table_flagged(self):
        findings = self.scan(footprints="OTHER = 1\n")
        assert any("FOOTPRINTS dict literal not found" in f.message
                   for f in findings)

    def test_annotated_table_assignment_accepted(self):
        annotated = GOOD_FOOTPRINTS.replace(
            "FOOTPRINTS = {", "FOOTPRINTS: Dict[str, KindFootprint] = {")
        assert self.scan(footprints=annotated) == []

    def test_missing_action_kinds_anchor_flagged(self):
        findings = self.scan(presets="OTHER = 1\n")
        assert any("ACTION_KINDS" in f.message for f in findings)

    def test_kind_comparison_forms_collected(self):
        # kinds appearing via == / membership tests are also anchored.
        compares = '''
def classify(action):
    if action.kind == "inv":
        return 1
    if action.kind in ("evict",):
        return 2
'''
        findings = self.scan(actions=GOOD_ACTIONS + compares)
        assert any("'inv'" in f.message for f in findings)
        assert any("'evict'" in f.message for f in findings)


GOOD_VEC_TABLES = '''
VEC_OPCODES = frozenset({"OP_LOAD"})
VEC_FALLBACK = frozenset({"OP_STORE", "OP_IFETCH", "OP_ATOMIC",
                          "OP_WB", "OP_INV"})
'''


class TestS004VecOpcodeTable:
    def scan(self, executor=GOOD_EXECUTOR, vec=GOOD_VEC_TABLES):
        return selfcheck.scan_vec_opcode_table(
            textwrap.dedent(executor), textwrap.dedent(vec))

    def test_real_tree_passes(self):
        assert selfcheck.check_vec_opcode_table() == []

    def test_complete_tables_pass(self):
        assert self.scan() == []

    def test_new_interpreter_opcode_without_routing_flagged(self):
        grown = GOOD_EXECUTOR.replace(
            """\
                elif kind == OP_INV:
                    cluster.invalidate_line(op[1])
""",
            """\
                elif kind == OP_INV:
                    cluster.invalidate_line(op[1])
                elif kind == OP_PREFETCH:
                    cluster.prefetch(op[1])
""")
        findings = self.scan(executor=grown)
        assert any(f.rule == "S004" and "OP_PREFETCH" in f.message
                   and "neither" in f.message for f in findings)

    def test_stale_table_entry_flagged(self):
        stale = GOOD_VEC_TABLES.replace('"OP_INV"', '"OP_INV", "OP_PREFETCH"')
        findings = self.scan(vec=stale)
        assert any("'OP_PREFETCH'" in f.message and "stale" in f.message
                   for f in findings)

    def test_overlapping_tables_flagged(self):
        overlap = GOOD_VEC_TABLES.replace('"OP_STORE"',
                                          '"OP_STORE", "OP_LOAD"')
        findings = self.scan(vec=overlap)
        assert any("both" in f.message and "OP_LOAD" in f.message
                   for f in findings)

    def test_missing_table_flagged(self):
        findings = self.scan(vec='VEC_OPCODES = frozenset({"OP_LOAD"})\n')
        assert any("VEC_FALLBACK" in f.message and "not found" in f.message
                   for f in findings)

    def test_computed_table_flagged(self):
        computed = GOOD_VEC_TABLES.replace(
            'VEC_OPCODES = frozenset({"OP_LOAD"})',
            'VEC_OPCODES = frozenset(op for op in KINDS)')
        findings = self.scan(vec=computed)
        assert any("literal" in f.message and "VEC_OPCODES" in f.message
                   for f in findings)

    def test_missing_dispatch_anchor_flagged(self):
        findings = self.scan(executor="class Other:\n    pass\n")
        assert any("_execute_slice not found" in f.message
                   for f in findings)


GOOD_PLANS = '''
def _frag_to_l3(cl, src, obs, recipe):
    text = f"""
    NET.messages += 1
    t = {src} + ONE_WAY
"""
    if obs:
        text += f"""
    OBS.emit(ObsEvent({src}, EV_NET, {cl}, dur=t - {src}, detail="up"))
"""
    return text


def _frag_bank_port(occ, recipe):
    return f"""
    t = PORTS.acquire(t, {occ})
"""
'''


class TestS005PlanEmitters:
    def scan(self, plans=GOOD_PLANS):
        return selfcheck.scan_plan_emitters(textwrap.dedent(plans))

    def test_real_tree_passes(self):
        assert selfcheck.check_plan_emitters() == []

    def test_good_fragments_pass(self):
        assert self.scan() == []

    def test_emitter_without_obs_hook_flagged(self):
        mutated = GOOD_PLANS.replace(
            'OBS.emit(ObsEvent({src}, EV_NET, {cl}, dur=t - {src}, '
            'detail="up"))', 'pass')
        findings = self.scan(mutated)
        assert any(f.rule == "S005" and "_frag_to_l3" in f.message
                   and "blind" in f.message for f in findings)

    def test_emitter_without_obs_parameter_flagged(self):
        mutated = GOOD_PLANS.replace(
            "def _frag_to_l3(cl, src, obs, recipe):",
            "def _frag_to_l3(cl, src, observe, recipe):").replace(
            "if obs:", "if observe:")
        findings = self.scan(mutated)
        assert any(f.rule == "S005" and "'obs' parameter" in f.message
                   for f in findings)

    def test_unguarded_emit_flagged(self):
        mutated = GOOD_PLANS.replace("""    if obs:
        text += f\"\"\"
    OBS.emit""", """    if True:
        text += f\"\"\"
    OBS.emit""")
        findings = self.scan(mutated)
        assert any(f.rule == "S005" and "if obs:" in f.message
                   for f in findings)

    def test_missing_fragments_anchor_flagged(self):
        findings = self.scan("def other():\n    pass\n")
        assert any(f.rule == "S005" and "cannot anchor" in f.message
                   for f in findings)

    def test_quiescent_variant_carries_no_emit(self):
        """The good sample's emit only exists under the obs branch --
        the scan itself must not demand an unconditional emit."""
        assert self.scan() == []
