"""Scale gate: whole-machine artifacts analyze in interactive time.

The analyzer exists so full-machine artifacts (1024 cores / 128
clusters) can be audited without simulating them; its bitmask
happens-before queries keep the pass near-linear in op count. The
budget here (60 s) is deliberately loose for CI hardware -- the pass is
expected to take well under a tenth of it.
"""

import time

from repro.analyze import analyze_frozen
from repro.runtime.program import Phase, Program, Task
from repro.types import OP_LOAD, OP_STORE, PolicyKind

N_CORES = 1024
N_PHASES = 8
LINES_PER_TASK = 16


def full_machine_program() -> Program:
    """A 1024-task-per-phase program shaped like a full-machine kernel:
    write phases partition the heap into per-task line strips (stored,
    flushed, invalidated); read phases have every task consume a
    neighbour's strip from the phase before."""
    base_line = 0x4000_0000 >> 5
    phases = []
    for p in range(N_PHASES):
        tasks = []
        for t in range(N_CORES):
            mine = base_line + t * LINES_PER_TASK
            theirs = base_line + ((t + 1) % N_CORES) * LINES_PER_TASK
            ops = []
            flush, inputs = [], []
            for i in range(LINES_PER_TASK):
                if p % 2 == 0:
                    ops.append((OP_STORE, (mine + i) << 5, p))
                    flush.append(mine + i)
                    inputs.append(mine + i)
                else:
                    ops.append((OP_LOAD, (theirs + i) << 5))
                    inputs.append(theirs + i)
            tasks.append(Task(ops=ops, flush_lines=flush,
                              input_lines=inputs, stack_words=0))
        phases.append(Phase(name=f"p{p}", tasks=tasks, code_lines=0))
    return Program(name="full-machine", phases=phases)


def test_full_machine_artifact_analyzes_under_budget():
    frozen = full_machine_program().freeze()
    assert frozen.total_ops > 100_000
    start = time.perf_counter()
    report = analyze_frozen(frozen, kind=PolicyKind.SWCC)
    elapsed = time.perf_counter() - start
    assert elapsed < 60.0, f"analysis took {elapsed:.1f}s"
    assert report.clean, report.format()
    assert report.summary["tasks"] == N_CORES * N_PHASES
    assert report.summary["lines"] == N_CORES * LINES_PER_TASK
