"""The coherence-mode advisor: schema, safety verdicts, dynamic crossval."""

import pytest

from repro import Machine, Policy
from repro.analysis.experiments import ExperimentConfig
from repro.analyze import ADVICE_SCHEMA, advise_program, analyze_workload
from repro.lint import run_with_oracles
from repro.mem.address import line_of
from repro.types import OP_ATOMIC, OP_LOAD, OP_STORE, PolicyKind
from repro.workloads import ALL_WORKLOADS, get_workload

from tests.analyze.conftest import cohesion_setup, phase, program, task

EXP = ExperimentConfig(n_clusters=1, scale=0.2, track_data=True)

RECORD_KEYS = {"name", "base", "size", "alloc_kind", "current_domain",
               "recommended_domain", "transition_schedule", "safe",
               "reason", "safety_note", "predicted", "evidence"}


def cohesion_advice(prog, alloc_log):
    frozen = prog.freeze()
    frozen.alloc_log = list(alloc_log)
    return advise_program(frozen, kind=PolicyKind.COHESION)


class TestSchema:
    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_every_kernel_emits_valid_records(self, name):
        report, frozen, _machine = analyze_workload(
            name, policy=Policy.cohesion(), exp=EXP, advise=True)
        advice = report.advice
        assert advice["schema"] == ADVICE_SCHEMA
        assert advice["program"] == frozen.name
        assert advice["policy"] == "cohesion"
        assert len(advice["regions"]) == len(frozen.alloc_log)
        names = [r["name"] for r in advice["regions"]]
        assert len(names) == len(set(names))
        for record in advice["regions"]:
            assert set(record) == RECORD_KEYS
            assert record["current_domain"] in ("swcc", "hwcc")
            assert record["recommended_domain"] in ("swcc", "hwcc")
            assert isinstance(record["safe"], bool)
            # The model never recommends a strictly costlier assignment.
            assert record["predicted"]["message_delta"] >= 0
            for entry in record["transition_schedule"]:
                assert entry["action"] in ("to_swcc", "to_hwcc")
                assert entry["base"] == record["base"]
                assert entry["size"] == record["size"]
            if record["alloc_kind"] == "immutable":
                assert record["recommended_domain"] == "swcc"

    def test_pure_policies_have_no_second_domain(self):
        report, _frozen, _machine = analyze_workload(
            "sobel", policy=Policy.swcc(), exp=EXP, advise=True)
        assert report.advice["regions"] == []

    def test_records_feed_the_adaptive_remapper(self):
        # The advisor's output is directly consumable by the dynamic
        # optimizer's registration call.
        from repro.core.adaptive import AdaptiveRemapper, Domain

        report, _frozen, machine = analyze_workload(
            "stencil", policy=Policy.cohesion(), exp=EXP, advise=True)
        remapper = AdaptiveRemapper(machine)
        for record in report.advice["regions"]:
            region = remapper.register(
                record["name"], record["base"], record["size"],
                Domain(record["recommended_domain"]))
            assert region.base == record["base"]


class TestRecommendations:
    def test_wasteful_swcc_region_flips_to_hwcc(self):
        # One store but five coherence instructions aimed at the region:
        # the directory would service it with two messages.
        machine, sw_addr, _hw = cohesion_setup()
        line = line_of(sw_addr)
        prog = program(phase("w", task(
            [(OP_STORE, sw_addr, 1)], flushes=[line],
            inputs=[line, line + 1, line + 2, line + 3])))
        advice = cohesion_advice(prog, [("sw", 256, sw_addr)])
        [record] = advice["regions"]
        assert record["recommended_domain"] == "hwcc"
        assert record["safe"] is True
        [flip] = record["transition_schedule"]
        assert flip == {"phase": -1, "action": "to_hwcc",
                        "base": sw_addr, "size": 256}
        assert record["predicted"]["message_delta"] > 0
        assert "no new findings" in record["safety_note"]

    def test_unsafe_flip_rejected_by_overlay(self):
        # A HWcc region looks free to the SWcc cost model (no WB/INV
        # aimed at it), but moving it would orphan the unflushed store:
        # the overlay re-run raises COH001 and vetoes the flip.
        machine, _sw, hw_addr = cohesion_setup()
        prog = program(
            phase("w", task([(OP_STORE, hw_addr, 7)])),
            phase("r", task([(OP_LOAD, hw_addr)])))
        advice = cohesion_advice(prog, [("hw", 64, hw_addr)])
        [record] = advice["regions"]
        assert record["recommended_domain"] == "swcc"
        assert record["safe"] is False
        assert "COH001" in record["safety_note"]

    def test_atomic_region_flip_rejected_by_overlay(self):
        # kmeans-style reduction buffer: atomics must stay HWcc (COH006).
        machine, _sw, hw_addr = cohesion_setup()
        prog = program(phase("reduce", task([(OP_ATOMIC, hw_addr, 1)])))
        advice = cohesion_advice(prog, [("hw", 64, hw_addr)])
        [record] = advice["regions"]
        assert record["safe"] is False
        assert "COH006" in record["safety_note"]

    def test_read_only_tail_gets_to_swcc_schedule(self):
        # Writes end at phase 0; the read-only remainder is cheaper under
        # software (zero directory traffic, zero WB/INV needed).
        machine, _sw, hw_addr = cohesion_setup()
        line = line_of(hw_addr)
        prog = program(
            phase("w", task([(OP_STORE, hw_addr, 1)],
                            flushes=[line, line, line],
                            inputs=[line, line, line])),
            phase("r1", task([(OP_LOAD, hw_addr)])),
            phase("r2", task([(OP_LOAD, hw_addr)])))
        advice = cohesion_advice(prog, [("hw", 64, hw_addr)])
        [record] = advice["regions"]
        assert record["recommended_domain"] == "hwcc"
        [tail] = record["transition_schedule"]
        assert tail["action"] == "to_swcc" and tail["phase"] == 0
        assert record["safe"] is True
        assert "write-free" in record["safety_note"]
        assert record["evidence"]["last_write_phase"] == 0
        assert record["evidence"]["read_phases_after_last_write"] == [1, 2]


class TestDynamicCrossval:
    def test_safe_flip_runs_clean_under_oracles(self):
        # Apply the advisor's pre-run to_hwcc flip for real (the Table 2
        # region call) and run fully instrumented: the data must still be
        # exact and no invariant may trip.
        machine, sw_addr, _hw = cohesion_setup()
        line = line_of(sw_addr)
        prog = program(
            phase("w", task([(OP_STORE, sw_addr, 7)], flushes=[line],
                            inputs=[line, line + 1, line + 2, line + 3])),
            phase("r", task([(OP_LOAD, sw_addr, 7)], inputs=[line])))
        prog.expected = {sw_addr: 7}
        advice = cohesion_advice(prog, [("sw", 256, sw_addr)])
        [record] = advice["regions"]
        assert record["safe"] is True
        flips = [entry for entry in record["transition_schedule"]
                 if entry["phase"] == -1]
        [flip] = flips
        assert flip["action"] == "to_hwcc"
        machine.api.coh_HWcc_region(flip["base"], flip["size"])
        # Mid-run entries apply at their barrier via the phase hook.
        for entry in record["transition_schedule"]:
            if entry["phase"] < 0:
                continue
            assert entry["action"] == "to_swcc"
            prog.phases[entry["phase"]].after = (
                lambda m, e=entry: m.api.coh_SWcc_region(e["base"],
                                                         e["size"]))
        run = run_with_oracles(machine, prog, watch=[line])
        assert not run.protocol_broken

    def test_kernel_safe_flips_run_clean(self):
        # The acceptance gate: every safe pre-run recommendation the
        # advisor makes for a shipped kernel must survive a fully
        # instrumented run with the flip actually applied.
        policy = Policy.cohesion()
        report, _frozen, _machine = analyze_workload(
            "kmeans", policy=policy, exp=EXP, advise=True)
        machine = Machine(EXP.machine_config(), policy)
        workload = get_workload("kmeans", scale=EXP.scale, seed=EXP.seed)
        prog = workload.build(machine)
        applied = 0
        for record in report.advice["regions"]:
            if not record["safe"]:
                continue
            for entry in record["transition_schedule"]:
                if entry["phase"] != -1:
                    continue
                convert = (machine.api.coh_HWcc_region
                           if entry["action"] == "to_hwcc"
                           else machine.api.coh_SWcc_region)
                convert(entry["base"], entry["size"])
                applied += 1
        run = run_with_oracles(machine, prog, trace=False)
        assert not run.protocol_broken
        # kmeans' unsafe hw->swcc temptations were vetoed, never applied.
        unsafe = [r for r in report.advice["regions"] if not r["safe"]]
        assert unsafe and applied == 0
