"""The whole-program rules COH007..COH010 on minimal frozen programs."""

import pytest

from repro.analyze import Transition, analyze_frozen
from repro.analyze.ir import FULL_LINE_MASK, WORDS_PER_LINE, AnalysisIR
from repro.lint import Severity, lint_program
from repro.mem.address import WORD_BYTES
from repro.types import (OP_ATOMIC, OP_INV, OP_LOAD, OP_STORE, OP_WB,
                         PolicyKind)

from tests.analyze.conftest import phase, program, swcc_domain, task

ADDR = 0x4000_0000
LINE = ADDR >> 5


def analyze(prog, rules=None, schedule=()):
    return analyze_frozen(prog.freeze(), kind=PolicyKind.SWCC,
                          domain=swcc_domain(), rules=rules,
                          schedule=schedule)


class TestCOH007StaleReadWindow:
    def _window(self, warm_inputs=(), reread_inputs=(LINE,)):
        return program(
            phase("warm", task([(OP_LOAD, ADDR)], inputs=warm_inputs)),
            phase("publish", task([(OP_ATOMIC, ADDR, 1)])),
            phase("reread", task([(OP_LOAD, ADDR)], inputs=reread_inputs)))

    def test_endangered_read_flagged(self):
        report = analyze(self._window(), rules=["COH007"])
        [diag] = report.findings.diagnostics
        assert diag.severity is Severity.ERROR
        # COH007 anchors on the *reader*; COH002 blames the cacher.
        assert diag.phase == 2 and diag.task == 0 and diag.line == LINE
        assert "phase 0 caches" in diag.message
        assert "phase 1 republishes" in diag.message

    def test_invalidated_cacher_silences(self):
        report = analyze(self._window(warm_inputs=[LINE]), rules=["COH007"])
        assert report.clean

    def test_no_republish_no_window(self):
        prog = program(
            phase("warm", task([(OP_LOAD, ADDR)])),
            phase("idle", task([(OP_LOAD, ADDR + 64)])),
            phase("reread", task([(OP_LOAD, ADDR)], inputs=[LINE])))
        assert analyze(prog, rules=["COH007"]).clean

    def test_read_adjacent_to_cache_has_no_window(self):
        # cache < write < read needs three distinct phases.
        prog = program(
            phase("warm", task([(OP_LOAD, ADDR)])),
            phase("publish", task([(OP_ATOMIC, ADDR, 1)])))
        assert analyze(prog, rules=["COH007"]).clean

    def test_store_side_publisher_also_opens_window(self):
        prog = program(
            phase("warm", task([(OP_LOAD, ADDR)])),
            phase("publish", task([(OP_STORE, ADDR, 9)], flushes=[LINE])),
            phase("reread", task([(OP_LOAD, ADDR)], inputs=[LINE])))
        report = analyze(prog, rules=["COH007"])
        assert [d.rule for d in report.findings.diagnostics] == ["COH007"]

    @pytest.mark.parametrize("warm_inputs", [(), (LINE,)])
    def test_dual_of_coh002(self, warm_inputs):
        # A program is COH007-clean exactly when it is COH002-clean: the
        # two rules attribute the same window to its two ends.
        prog = self._window(warm_inputs=warm_inputs)
        lint_clean = lint_program(prog, domain=swcc_domain(),
                                  rules=["COH002"]).clean
        assert analyze(prog, rules=["COH007"]).clean == lint_clean


class TestCOH008RedundantWriteback:
    def test_flush_without_store_warns(self):
        prog = program(phase("p", task([(OP_LOAD, ADDR)], flushes=[LINE])))
        report = analyze(prog, rules=["COH008"])
        [diag] = report.findings.diagnostics
        assert diag.severity is Severity.WARNING
        assert diag.line == LINE and "never stores" in diag.message
        assert report.summary["redundant_wb_sites"] == 1

    def test_flush_of_untouched_line_warns(self):
        prog = program(phase("p", task([(OP_LOAD, ADDR + 64)],
                                       flushes=[LINE])))
        assert not analyze(prog, rules=["COH008"]).clean

    def test_inline_wb_counts(self):
        prog = program(phase("p", task([(OP_LOAD, ADDR), (OP_WB, ADDR)])))
        assert not analyze(prog, rules=["COH008"]).clean

    def test_stored_line_flush_is_fine(self):
        prog = program(phase("p", task([(OP_STORE, ADDR, 1)],
                                       flushes=[LINE])))
        assert analyze(prog, rules=["COH008"]).clean


class TestCOH009UselessInvalidate:
    def test_invalidate_of_untouched_line_warns(self):
        prog = program(phase("p", task([(OP_LOAD, ADDR + 64)],
                                       inputs=[LINE])))
        report = analyze(prog, rules=["COH009"])
        [diag] = report.findings.diagnostics
        assert diag.severity is Severity.WARNING
        assert diag.line == LINE and "no copy to drop" in diag.message
        assert report.summary["useless_inv_sites"] == 1

    def test_inline_inv_counts(self):
        prog = program(phase("p", task([(OP_LOAD, ADDR + 64),
                                        (OP_INV, ADDR)])))
        assert not analyze(prog, rules=["COH009"]).clean

    @pytest.mark.parametrize("op", [OP_LOAD, OP_STORE])
    def test_touched_line_invalidate_is_fine(self, op):
        ops = [(op, ADDR)] if op == OP_LOAD else [(op, ADDR, 1)]
        prog = program(phase("p", task(ops, inputs=[LINE])))
        assert analyze(prog, rules=["COH009"]).clean


class TestCOH010UnsafeTransition:
    TO_HW = Transition(phase=0, action="to_hwcc", base=ADDR, size=64)

    def test_unflushed_dirty_copy_flagged(self):
        prog = program(phase("w", task([(OP_STORE, ADDR, 1)])))
        report = analyze(prog, rules=["COH010"], schedule=[self.TO_HW])
        [diag] = report.findings.diagnostics
        assert diag.severity is Severity.ERROR
        assert "unflushed-dirty" in diag.message and diag.line == LINE

    def test_partial_valid_copy_flagged(self):
        # Flushed, but store-allocated without a full-line fill: only
        # the SWcc per-word masks can express word-wise validity.
        prog = program(phase("w", task([(OP_STORE, ADDR, 1)],
                                       flushes=[LINE])))
        report = analyze(prog, rules=["COH010"], schedule=[self.TO_HW])
        [diag] = report.findings.diagnostics
        assert "partial-valid" in diag.message

    def test_flushed_and_invalidated_copy_is_safe(self):
        prog = program(phase("w", task([(OP_STORE, ADDR, 1)],
                                       flushes=[LINE], inputs=[LINE])))
        assert analyze(prog, rules=["COH010"],
                       schedule=[self.TO_HW]).clean

    def test_full_line_store_is_safe_once_flushed(self):
        ops = [(OP_STORE, ADDR + WORD_BYTES * w, w)
               for w in range(WORDS_PER_LINE)]
        prog = program(phase("w", task(ops, flushes=[LINE])))
        ir = AnalysisIR.of_frozen(prog.freeze())
        assert ir.tasks[0].stores[LINE] == FULL_LINE_MASK
        assert analyze(prog, rules=["COH010"],
                       schedule=[self.TO_HW]).clean

    def test_later_store_not_audited(self):
        # Only tasks at or before the transition barrier can leave a
        # copy behind; later phases run with the region already HWcc.
        prog = program(
            phase("idle", task([(OP_LOAD, ADDR + 64)])),
            phase("w", task([(OP_STORE, ADDR, 1)])))
        schedule = [Transition(phase=0, action="to_hwcc",
                               base=ADDR, size=64)]
        assert analyze(prog, rules=["COH010"], schedule=schedule).clean

    def test_to_swcc_never_flagged(self):
        prog = program(phase("w", task([(OP_STORE, ADDR, 1)])))
        schedule = [Transition(phase=0, action="to_swcc",
                               base=ADDR, size=64)]
        assert analyze(prog, rules=["COH010"], schedule=schedule).clean

    def test_no_schedule_is_vacuous(self):
        prog = program(phase("w", task([(OP_STORE, ADDR, 1)])))
        assert analyze(prog, rules=["COH010"]).clean

    def test_other_region_unaffected(self):
        far = Transition(phase=0, action="to_hwcc",
                         base=ADDR + 0x1000, size=64)
        prog = program(phase("w", task([(OP_STORE, ADDR, 1)])))
        assert analyze(prog, rules=["COH010"], schedule=[far]).clean
