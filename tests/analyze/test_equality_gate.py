"""Soundness gate: the two static engines agree finding-for-finding.

``repro lint`` walks live per-task op lists; ``repro analyze`` derives
its verdicts from the frozen artifact's flat slices and bitmask
happens-before vectors. The two implementations share each rule's
diagnostic factory but nothing of their program representation, so
exact agreement -- same rules, same sites, same messages, same order --
over every shipped kernel under every policy is a real cross-check of
both. Corrupted programs extend the gate beyond the all-clean case.
"""

import random

import pytest

from repro.analysis.experiments import ExperimentConfig
from repro.analyze import analyze_frozen, analyze_workload
from repro.cli import policy_from_name
from repro.lint import lint_program, lint_workload
from repro.runtime.program import Phase, Program, Task
from repro.types import OP_LOAD, OP_STORE, PolicyKind
from repro.workloads import ALL_WORKLOADS

from tests.analyze.conftest import diag_tuples, swcc_domain

EXP = ExperimentConfig(n_clusters=1, scale=0.2)
SHARED_RULES = ["COH001", "COH002", "COH003", "COH004", "COH005", "COH006"]


@pytest.mark.parametrize("policy_name", ["swcc", "hwcc-ideal", "cohesion"])
@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_kernel_reports_identical(name, policy_name):
    policy = policy_from_name(policy_name)
    lint_report, _program, _machine = lint_workload(
        name, policy=policy, exp=EXP)
    analysis, frozen, _machine = analyze_workload(name, policy=policy,
                                                  exp=EXP)
    assert diag_tuples(analysis) == diag_tuples(lint_report)
    assert analysis.clean and lint_report.clean
    # The whole-program rules find nothing new on disciplined kernels.
    for rule_id in ("COH007", "COH008", "COH009", "COH010"):
        assert analysis.summary[rule_id] == 0
    assert analysis.summary["ops"] == frozen.total_ops
    assert analysis.findings.notes == lint_report.notes


def _random_program(seed: int) -> Program:
    """A seeded multi-phase SWcc program with injected protocol bugs.

    Starts from the disciplined shape (store -> flush; later read ->
    invalidate) and then corrupts it: dropped flushes (COH001), dropped
    invalidates (COH002/COH007), intra-phase write sharing (COH003),
    duplicated coherence ops (COH005), and flushes/invalidates of
    untouched lines (COH008/COH009 for the analyzer).
    """
    rng = random.Random(seed)
    base_line = 0x4000_0000 >> 5
    n_lines = rng.randrange(4, 9)
    phases = []
    for p in range(rng.randrange(2, 5)):
        tasks = []
        for t in range(rng.randrange(1, 4)):
            ops, flush, inputs = [], [], []
            for _ in range(rng.randrange(1, 5)):
                line = base_line + rng.randrange(n_lines)
                addr = (line << 5) + 4 * rng.randrange(8)
                if rng.random() < 0.5:
                    ops.append((OP_STORE, addr, rng.randrange(1000)))
                    if rng.random() < 0.7:
                        flush.append(line)
                else:
                    ops.append((OP_LOAD, addr))
                    if rng.random() < 0.7:
                        inputs.append(line)
            if rng.random() < 0.3:  # wasted ops on an untouched line
                stray = base_line + rng.randrange(n_lines)
                (flush if rng.random() < 0.5 else inputs).append(stray)
            if flush and rng.random() < 0.2:
                flush.append(flush[0])  # duplicate
            tasks.append(Task(ops=ops, flush_lines=flush,
                              input_lines=inputs, stack_words=0))
        phases.append(Phase(name=f"p{p}", tasks=tasks, code_lines=0))
    return Program(name=f"fuzz{seed}", phases=phases)


@pytest.mark.parametrize("seed", range(40))
def test_corrupted_programs_report_identical(seed):
    prog = _random_program(seed)
    domain = swcc_domain()
    lint_report = lint_program(prog, domain=domain)
    analysis = analyze_frozen(prog.freeze(), kind=PolicyKind.SWCC,
                              domain=domain, rules=SHARED_RULES)
    assert diag_tuples(analysis) == diag_tuples(lint_report)


def test_truncation_agrees():
    # Both engines must cut at max_diagnostics_per_rule identically.
    prog = _random_program(7)
    domain = swcc_domain()
    lint_report = lint_program(prog, domain=domain,
                               max_diagnostics_per_rule=2)
    analysis = analyze_frozen(prog.freeze(), kind=PolicyKind.SWCC,
                              domain=domain, rules=SHARED_RULES,
                              max_diagnostics_per_rule=2)
    assert diag_tuples(analysis) == diag_tuples(lint_report)
