"""Standalone artifact files: dump, load, and machine-free analysis."""

import pickle

import pytest

from repro.analysis.experiments import ExperimentConfig
from repro.analyze import analyze_frozen, analyze_workload
from repro.cache import dump_artifact, load_artifact
from repro.cache.programs import PROGRAM_SCHEMA
from repro.config import Policy
from repro.errors import StaleArtifactError
from repro.types import OP_LOAD, OP_STORE, PolicyKind

from tests.analyze.conftest import diag_tuples, phase, program, task

ADDR = 0x4000_0000
EXP = ExperimentConfig(n_clusters=1, scale=0.2)


def small_frozen():
    line = ADDR >> 5
    return program(
        phase("w", task([(OP_STORE, ADDR, 7)], flushes=[line])),
        phase("r", task([(OP_LOAD, ADDR)], inputs=[line]))).freeze()


class TestRoundTrip:
    def test_dump_then_load(self, tmp_path):
        frozen = small_frozen()
        path = tmp_path / "prog.pkl"
        dump_artifact(frozen, path)
        loaded = load_artifact(path)
        assert loaded.name == frozen.name
        assert loaded.total_ops == frozen.total_ops
        assert diag_tuples(analyze_frozen(loaded)) == \
            diag_tuples(analyze_frozen(frozen))

    def test_store_payload_accepted(self, tmp_path):
        # ``--artifact`` can point straight at a file under the program
        # store, whose payload wraps the frozen program in a dict.
        frozen = small_frozen()
        path = tmp_path / "payload.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"schema": PROGRAM_SCHEMA, "key": {},
                         "frozen": frozen}, fh)
        assert load_artifact(path).total_ops == frozen.total_ops

    def test_kernel_artifact_analyzes_machine_free(self, tmp_path):
        # Same verdicts whether the artifact is analyzed in-process or
        # re-loaded from disk with no machine and no workload imports.
        report, frozen, _machine = analyze_workload(
            "gjk", policy=Policy.cohesion(), exp=EXP)
        path = tmp_path / "gjk.pkl"
        dump_artifact(frozen, path)
        offline = analyze_frozen(load_artifact(path),
                                 kind=PolicyKind.COHESION)
        assert diag_tuples(offline) == diag_tuples(report)
        assert offline.summary["ops"] == report.summary["ops"]


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StaleArtifactError, match="cannot read"):
            load_artifact(tmp_path / "nope.pkl")

    def test_not_a_pickle(self, tmp_path):
        path = tmp_path / "junk.pkl"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(StaleArtifactError, match="cannot read"):
            load_artifact(path)

    def test_wrong_payload_type(self, tmp_path):
        path = tmp_path / "wrong.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"schema": PROGRAM_SCHEMA}, fh)
        with pytest.raises(StaleArtifactError, match="frozen program"):
            load_artifact(path)

    def test_format_mismatch(self, tmp_path):
        frozen = small_frozen()
        frozen.format = 999
        path = tmp_path / "future.pkl"
        dump_artifact(frozen, path)
        with pytest.raises(StaleArtifactError, match="format 999"):
            load_artifact(path)
