"""Dynamic confirmation of the analyzer's whole-program findings.

Mirror of ``tests/lint/test_crossval.py`` for COH007..COH009: each
static prediction must be borne out by a fully-instrumented simulation
(COH007 by stale data, COH008/COH009 by the WB/INV waste counters), and
seeded random programs close the loop in bulk -- disciplined programs
run clean under every oracle, corrupted ones are flagged identically by
both static engines before the simulator confirms the damage class.
"""

import random

import pytest

from repro import Policy
from repro.analyze import analyze_frozen
from repro.lint import lint_program, run_with_oracles, watched_lines
from repro.runtime.program import Phase, Program, Task
from repro.types import OP_ATOMIC, OP_LOAD, OP_STORE, PolicyKind

from tests.analyze.conftest import (diag_tuples, phase, program, swcc_domain,
                                    swcc_setup, task)

SHARED_RULES = ["COH001", "COH002", "COH003", "COH004", "COH005", "COH006"]


class TestTruePositives:
    def test_coh007_reader_observes_stale_value(self):
        machine, addr, line = swcc_setup(value=5)
        prog = program(
            phase("warm", task([(OP_LOAD, addr, 5)])),
            phase("publish", task([(OP_ATOMIC, addr, 1)])),
            phase("reread", task([(OP_LOAD, addr, 6)], inputs=[line])))
        prog.expected = {addr: 6}
        report = analyze_frozen(prog.freeze(), kind=PolicyKind.SWCC,
                                domain=swcc_domain(), rules=["COH007"])
        [diag] = report.findings.diagnostics
        run = run_with_oracles(machine, prog, watch=watched_lines([diag]))
        # The endangered read COH007 anchors on is exactly the load that
        # observed the stale 5.
        assert (addr, 6, 5) in run.mismatches
        assert run.confirms(diag)

    def test_coh008_flush_of_loaded_line_is_clean_wb(self):
        machine, addr, line = swcc_setup(value=5)
        prog = program(phase("p", task([(OP_LOAD, addr, 5)],
                                       flushes=[line])))
        report = analyze_frozen(prog.freeze(), kind=PolicyKind.SWCC,
                                domain=swcc_domain(), rules=["COH008"])
        [diag] = report.findings.diagnostics
        run = run_with_oracles(machine, prog, watch=[line])
        # The WB found a resident copy with nothing dirty on it.
        assert run.clean_wb >= 1
        assert run.confirms(diag)
        assert not run.protocol_broken

    def test_coh008_flush_of_untouched_line_is_wasted_wb(self):
        machine, addr, line = swcc_setup(value=5)
        prog = program(phase("p", task([(OP_LOAD, addr + 64, 0)],
                                       flushes=[line])))
        report = analyze_frozen(prog.freeze(), kind=PolicyKind.SWCC,
                                domain=swcc_domain(), rules=["COH008"])
        [diag] = report.findings.diagnostics
        run = run_with_oracles(machine, prog, watch=[line])
        # The WB found no copy at all.
        assert run.wasted_wb >= 1
        assert run.confirms(diag)

    def test_coh009_invalidate_of_untouched_line_is_wasted_inv(self):
        machine, addr, line = swcc_setup(value=5)
        prog = program(phase("p", task([(OP_LOAD, addr + 64, 0)],
                                       inputs=[line])))
        report = analyze_frozen(prog.freeze(), kind=PolicyKind.SWCC,
                                domain=swcc_domain(), rules=["COH009"])
        [diag] = report.findings.diagnostics
        run = run_with_oracles(machine, prog, watch=[line])
        # The lazy INV at the barrier found the line already absent.
        assert run.wasted_inv >= 1
        assert run.confirms(diag)
        assert not run.protocol_broken

    def test_coh010_has_no_dynamic_oracle(self):
        # COH010 predicts what a hypothetical schedule would break; a
        # run of the unmodified program cannot confirm it.
        machine, addr, line = swcc_setup(value=5)
        prog = program(phase("w", task([(OP_STORE, addr, 7)],
                                       flushes=[line])))
        from repro.analyze.rules import coh010_diagnostic
        diag = coh010_diagnostic(0, "w", 0, line, 0, "partial-valid")
        run = run_with_oracles(machine, prog, watch=[line])
        assert not run.confirms(diag)


def _disciplined_program(rng: random.Random, corrupt: bool
                         ) -> tuple:
    """A seeded BSP-disciplined SWcc program (optionally corrupted).

    Disciplined: within a phase, writers own disjoint lines; every
    written line is flushed; every consumer of a line rewritten in an
    earlier phase invalidates it. Corruption drops one flush or one
    invalidate, which both engines must flag identically.
    """
    base_line = 0x4000_0000 >> 5
    n_lines = 8
    shadow = {}
    phases = []
    value = 0
    for p in range(rng.randrange(2, 4)):
        n_tasks = rng.randrange(1, 4)
        lines = list(range(n_lines))
        rng.shuffle(lines)
        tasks = []
        for t in range(n_tasks):
            ops, flush, inputs = [], [], []
            for line_index in lines[t::n_tasks][:2]:
                line = base_line + line_index
                addr = line << 5
                if rng.random() < 0.5:
                    value += 1
                    ops.append((OP_STORE, addr, value))
                    shadow[addr] = value
                    flush.append(line)
                    inputs.append(line)
                elif addr in shadow:
                    ops.append((OP_LOAD, addr, shadow[addr]))
                    inputs.append(line)
            tasks.append(Task(ops=ops, flush_lines=flush,
                              input_lines=inputs, stack_words=0))
        phases.append(Phase(name=f"p{p}", tasks=tasks, code_lines=0))
    prog = Program(name="crossval", phases=phases)
    if corrupt:
        candidates = [t for ph in phases for t in ph.tasks
                      if t.flush_lines or t.input_lines]
        victim = rng.choice(candidates) if candidates else None
        if victim is not None:
            which = victim.flush_lines if (victim.flush_lines
                                           and rng.random() < 0.5) \
                else victim.input_lines or victim.flush_lines
            which.pop(rng.randrange(len(which)))
    return prog, shadow


class TestSeededBulkCrossval:
    @pytest.mark.parametrize("seed", range(12))
    def test_disciplined_programs_run_clean(self, seed):
        rng = random.Random(seed)
        prog, shadow = _disciplined_program(rng, corrupt=False)
        domain = swcc_domain()
        analysis = analyze_frozen(prog.freeze(), kind=PolicyKind.SWCC,
                                  domain=domain)
        assert analysis.errors == [], analysis.format()
        prog.expected = dict(shadow)
        from tests.conftest import make_machine
        machine = make_machine(Policy.swcc(), n_clusters=1)
        run = run_with_oracles(machine, prog, trace=False)
        assert not run.protocol_broken

    @pytest.mark.parametrize("seed", range(12))
    def test_corrupted_programs_flagged_identically(self, seed):
        rng = random.Random(1000 + seed)
        prog, shadow = _disciplined_program(rng, corrupt=True)
        domain = swcc_domain()
        lint_report = lint_program(prog, domain=domain)
        analysis = analyze_frozen(prog.freeze(), kind=PolicyKind.SWCC,
                                  domain=domain, rules=SHARED_RULES)
        assert diag_tuples(analysis) == diag_tuples(lint_report)
        # The reader-side dual agrees with COH002 on cleanliness.
        coh002 = lint_program(prog, domain=domain, rules=["COH002"]).clean
        coh007 = analyze_frozen(prog.freeze(), kind=PolicyKind.SWCC,
                                domain=domain, rules=["COH007"]).clean
        assert coh002 == coh007
