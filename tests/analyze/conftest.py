"""Frozen twins of the lint suite's hand-built program helpers."""

from repro.lint import DomainModel
from repro.types import PolicyKind

from tests.lint.conftest import (cohesion_setup, phase, program,  # noqa: F401
                                 rule_ids, swcc_setup, task)


def swcc_domain() -> DomainModel:
    """Pure SWcc: every line is software-managed, no tables needed."""
    return DomainModel(PolicyKind.SWCC)


def cohesion_domain() -> DomainModel:
    """The boot-time Cohesion model resolved from the default layout."""
    return DomainModel.of_layout(PolicyKind.COHESION)


def diag_tuples(report):
    """Every finding of a lint/analysis report as comparable tuples."""
    diagnostics = getattr(report, "findings", report).diagnostics
    return [(d.rule, d.severity, d.phase, d.task, d.line, d.message, d.hint)
            for d in diagnostics]
