"""Message taxonomy counters."""

from repro.coherence.messages import MessageCounters
from repro.types import MESSAGE_STACK_ORDER, MessageType


class TestMessageCounters:
    def test_starts_at_zero(self):
        counters = MessageCounters()
        assert counters.total() == 0
        assert all(v == 0 for v in counters.as_dict().values())

    def test_total_sums_all_categories(self):
        counters = MessageCounters()
        counters.read_request = 3
        counters.write_request = 2
        counters.probe_response = 1
        assert counters.total() == 6

    def test_as_dict_covers_every_type(self):
        counters = MessageCounters()
        assert set(counters.as_dict()) == set(MessageType)
        assert len(MESSAGE_STACK_ORDER) == len(MessageType)

    def test_reset(self):
        counters = MessageCounters()
        counters.read_request = 5
        counters.wb_issued = 2
        counters.reset()
        assert counters.total() == 0
        assert counters.wb_issued == 0

    def test_useful_fractions(self):
        counters = MessageCounters()
        assert counters.useful_wb_fraction == 0.0
        assert counters.useful_inv_fraction == 0.0
        counters.wb_issued = 10
        counters.wb_on_valid = 4
        counters.inv_issued = 5
        counters.inv_on_valid = 5
        assert counters.useful_wb_fraction == 0.4
        assert counters.useful_inv_fraction == 1.0
        assert counters.useful_coherence_fraction == 9 / 15

    def test_useful_fraction_empty_denominator(self):
        counters = MessageCounters()
        assert counters.useful_coherence_fraction == 0.0

    def test_merged_with(self):
        a = MessageCounters()
        b = MessageCounters()
        a.read_request = 1
        a.wb_issued = 2
        b.read_request = 10
        b.software_flush = 3
        merged = a.merged_with(b)
        assert merged.read_request == 11
        assert merged.software_flush == 3
        assert merged.wb_issued == 2
        # originals untouched
        assert a.read_request == 1 and b.read_request == 10
