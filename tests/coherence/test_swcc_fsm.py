"""The software-protocol state machine (Figure 6, left half)."""

import pytest

from repro.coherence.swcc import (GLOBALLY_VISIBLE_AFTER, SW_TRANSITIONS,
                                  classify_sw_state, is_legal, next_state)
from repro.mem.cache import CacheLine
from repro.types import SWState


class TestTransitions:
    def test_write_allocate_from_invalid(self):
        assert next_state(SWState.INVALID, "ST") is SWState.PRIVATE_DIRTY

    def test_first_touch_loads(self):
        assert next_state(SWState.INVALID, "LD") is SWState.CLEAN
        assert next_state(SWState.INVALID, "LD_PRIVATE") is SWState.PRIVATE_CLEAN
        assert next_state(SWState.INVALID, "LD_IMMUTABLE") is SWState.IMMUTABLE

    def test_writeback_cleans_dirty(self):
        assert next_state(SWState.PRIVATE_DIRTY, "WB") is SWState.CLEAN

    def test_clean_states_drop_silently(self):
        for state in (SWState.CLEAN, SWState.PRIVATE_CLEAN, SWState.IMMUTABLE):
            assert next_state(state, "EVICT") is SWState.INVALID
            assert next_state(state, "INV") is SWState.INVALID

    def test_loads_are_self_loops(self):
        for state in (SWState.CLEAN, SWState.PRIVATE_CLEAN,
                      SWState.PRIVATE_DIRTY, SWState.IMMUTABLE):
            assert next_state(state, "LD") is state

    def test_immutable_rejects_stores(self):
        assert not is_legal(SWState.IMMUTABLE, "ST")
        with pytest.raises(KeyError):
            next_state(SWState.IMMUTABLE, "ST")

    def test_clean_states_have_no_writeback(self):
        for state in (SWState.CLEAN, SWState.PRIVATE_CLEAN, SWState.IMMUTABLE):
            assert not is_legal(state, "WB")

    def test_only_dirty_owes_visibility(self):
        assert set(GLOBALLY_VISIBLE_AFTER) == {"WB", "EVICT"}

    def test_every_state_reachable(self):
        reachable = {SWState.INVALID}
        frontier = [SWState.INVALID]
        while frontier:
            state = frontier.pop()
            for (src, _event), dst in SW_TRANSITIONS.items():
                if src is state and dst not in reachable:
                    reachable.add(dst)
                    frontier.append(dst)
        assert reachable == set(SWState)

    def test_every_state_can_reach_invalid(self):
        for state in SWState:
            if state is SWState.INVALID:
                continue
            outs = {dst for (src, _e), dst in SW_TRANSITIONS.items()
                    if src is state}
            assert SWState.INVALID in outs


class TestClassification:
    def test_absent_is_invalid(self):
        assert classify_sw_state(None) is SWState.INVALID

    def test_dirty_dominates(self):
        entry = CacheLine(1, dirty_mask=0b1)
        assert classify_sw_state(entry, private=True,
                                 immutable=True) is SWState.PRIVATE_DIRTY

    def test_immutable_clean(self):
        entry = CacheLine(1)
        assert classify_sw_state(entry, immutable=True) is SWState.IMMUTABLE

    def test_private_clean(self):
        entry = CacheLine(1)
        assert classify_sw_state(entry, private=True) is SWState.PRIVATE_CLEAN

    def test_shared_clean(self):
        entry = CacheLine(1)
        assert classify_sw_state(entry) is SWState.CLEAN
