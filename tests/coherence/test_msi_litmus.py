"""Scripted MSI litmus sequences across clusters.

Each test drives a short, fully determined sequence of accesses and
checks the directory state, cache contents, message counts, and data
values after every step -- the protocol equivalent of litmus tests.
"""

import pytest

from repro import Policy
from repro.coherence.directory import DIR_M, DIR_S

from tests.conftest import make_machine

ADDR = 0x2100_0000  # coherent heap, clear of runtime cells
LINE = ADDR >> 5


@pytest.fixture
def machine():
    return make_machine(Policy.hwcc_ideal())


def dir_entry(machine):
    return machine.memsys.directory_of(LINE).get(LINE)


class TestReadChains:
    def test_r_r_r_accumulates_sharers(self, machine):
        for cid in range(2):
            for core in range(3):
                machine.clusters[cid].load(core, ADDR, 100.0 * cid + core)
        entry = dir_entry(machine)
        assert entry.state == DIR_S
        assert sorted(entry.sharer_ids()) == [0, 1]
        # only the first access per cluster missed to the L3
        assert machine.memsys.counters.read_request == 2

    def test_read_release_then_reread(self, machine):
        machine.clusters[0].load(0, ADDR, 0.0)
        machine.memsys.read_release(0, LINE, 100.0)
        assert dir_entry(machine) is None
        machine.clusters[0].l2.remove(LINE)
        machine.clusters[0]._drop_l1(LINE)
        machine.clusters[0].load(0, ADDR, 200.0)
        assert dir_entry(machine).sharer_ids() == [0]


class TestWriteChains:
    def test_w_r_w_migratory(self, machine):
        """The migratory pattern: write, remote read, remote write."""
        c0, c1 = machine.clusters
        c0.store(0, ADDR, 1, 0.0)
        assert dir_entry(machine).state == DIR_M
        assert dir_entry(machine).owner() == 0

        _t, seen = c1.load(0, ADDR, 1000.0)
        assert seen == 1
        entry = dir_entry(machine)
        assert entry.state == DIR_S
        assert sorted(entry.sharer_ids()) == [0, 1]

        c1.store(0, ADDR, 2, 2000.0)  # upgrade: invalidate the old owner
        entry = dir_entry(machine)
        assert entry.state == DIR_M and entry.owner() == 1
        assert c0.l2.peek(LINE) is None

        _t, seen = c0.load(0, ADDR, 3000.0)
        assert seen == 2

    def test_w_w_pingpong_counts(self, machine):
        c0, c1 = machine.clusters
        counters = machine.memsys.counters
        t = 0.0
        for round_index in range(4):
            writer = (c0, c1)[round_index % 2]
            t = writer.store(0, ADDR, round_index, t + 500.0)
        # round 0: plain write miss; rounds 1-3 steal from the other
        # cluster: 4 write requests, 3 probe responses
        assert counters.write_request == 4
        assert counters.probe_response == 3
        _t, seen = c0.load(0, ADDR, 1e6)
        assert seen == 3

    def test_false_sharing_pingpong(self, machine):
        """Distinct words of one line still ping-pong under HWcc --
        exactly what the paper notes SWcc eliminates."""
        c0, c1 = machine.clusters
        t = 0.0
        for i in range(3):
            t = c0.store(0, ADDR, i, t + 500.0)        # word 0
            t = c1.store(0, ADDR + 4, 100 + i, t + 500.0)  # word 1
        assert machine.memsys.counters.probe_response >= 5
        # both final values visible
        _t, w0 = c1.load(0, ADDR, 1e6)
        _t, w1 = c0.load(1, ADDR + 4, 1e6 + 100)
        assert (w0, w1) == (2, 102)

    def test_no_false_sharing_under_swcc(self):
        """The same word-disjoint pattern under SWcc: zero probes."""
        machine = make_machine(Policy.swcc())
        c0, c1 = machine.clusters
        t = 0.0
        for i in range(3):
            t = c0.store(0, ADDR, i, t + 500.0)
            t = c1.store(0, ADDR + 4, 100 + i, t + 500.0)
        assert machine.memsys.counters.probe_response == 0
        assert machine.memsys.counters.total() == 0  # fully local
        # flushes merge the disjoint words at the L3
        c0.flush_line(0, LINE, 1e5)
        c1.flush_line(0, LINE, 1e5 + 50)
        reply = machine.memsys.read_line(0, LINE, 1e6)
        assert reply.data[0] == 2 and reply.data[1] == 102


class TestMixedChains:
    def test_r_w_same_cluster_upgrade(self, machine):
        cluster = machine.clusters[0]
        cluster.load(0, ADDR, 0.0)
        assert dir_entry(machine).state == DIR_S
        cluster.store(1, ADDR, 9, 100.0)  # different core, same L2
        entry = dir_entry(machine)
        assert entry.state == DIR_M and entry.owner() == 0
        # the sibling core's upgrade kept the line local: no probes
        assert machine.memsys.counters.probe_response == 0

    def test_atomic_after_write_chain(self, machine):
        c0, c1 = machine.clusters
        c0.store(0, ADDR, 10, 0.0)
        _t, old = c1.atomic(0, ADDR, lambda a, b: a + b, 5, 1000.0)
        assert old == 10
        assert dir_entry(machine) is None  # atomics leave the line uncached
        _t, seen = c0.load(0, ADDR, 2000.0)
        assert seen == 15

    def test_downgrade_preserves_other_words(self, machine):
        c0, c1 = machine.clusters
        machine.memsys.backing.write_word_addr(ADDR + 28, 777)
        c0.store(0, ADDR, 1, 0.0)        # word 0 dirty, word 7 from memory
        _t, tail = c1.load(0, ADDR + 28, 1000.0)
        assert tail == 777
        _t, head = c1.load(0, ADDR, 1001.0)
        assert head == 1
