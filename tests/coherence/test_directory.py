"""Directory organisations: full-map, sparse, Dir4B."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coherence.directory import (DIR_M, DIR_S, DirectoryEntry,
                                       InfiniteDirectory,
                                       LimitedPointerDirectory,
                                       SparseDirectory, _Occupancy,
                                       build_directory, popcount)
from repro.errors import ConfigError, ProtocolError
from repro.types import DirectoryKind, DirState, SegmentClass

HEAP = SegmentClass.HEAP_GLOBAL
STACK = SegmentClass.STACK


def test_popcount():
    assert popcount(0) == 0
    assert popcount(0b1011) == 3
    assert popcount((1 << 128) - 1) == 128


class TestDirectoryEntry:
    def test_initial_state(self):
        entry = DirectoryEntry(7, HEAP)
        assert entry.state == DIR_S
        assert entry.state_enum is DirState.SHARED
        assert entry.n_sharers == 0
        assert not entry.broadcast

    def test_sharer_ids(self):
        entry = DirectoryEntry(7, HEAP)
        entry.sharers = 0b1010_0001
        assert entry.sharer_ids() == [0, 5, 7]

    def test_owner_requires_modified_single_sharer(self):
        entry = DirectoryEntry(7, HEAP)
        entry.state = DIR_M
        entry.sharers = 1 << 9
        assert entry.owner() == 9
        entry.sharers |= 1
        with pytest.raises(ProtocolError):
            entry.owner()
        entry.state = DIR_S
        entry.sharers = 1 << 9
        with pytest.raises(ProtocolError):
            entry.owner()


class TestInfiniteDirectory:
    def test_allocate_never_evicts(self):
        directory = InfiniteDirectory()
        for line in range(1000):
            _entry, victim = directory.allocate(line, HEAP, now=float(line))
            assert victim is None
        assert len(directory) == 1000

    def test_duplicate_allocation_rejected(self):
        directory = InfiniteDirectory()
        directory.allocate(1, HEAP, 0.0)
        with pytest.raises(ProtocolError):
            directory.allocate(1, HEAP, 1.0)

    def test_deallocate(self):
        directory = InfiniteDirectory()
        entry, _ = directory.allocate(1, HEAP, 0.0)
        directory.deallocate(entry, 5.0)
        assert directory.get(1) is None
        assert len(directory) == 0

    def test_deallocate_foreign_entry_rejected(self):
        directory = InfiniteDirectory()
        directory.allocate(1, HEAP, 0.0)
        foreign = DirectoryEntry(1, HEAP)
        with pytest.raises(ProtocolError):
            directory.deallocate(foreign, 1.0)

    def test_add_remove_sharer(self):
        directory = InfiniteDirectory()
        entry, _ = directory.allocate(1, HEAP, 0.0)
        directory.add_sharer(entry, 3)
        directory.add_sharer(entry, 120)
        assert entry.n_sharers == 2
        directory.remove_sharer(entry, 3)
        assert entry.sharer_ids() == [120]

    def test_invalidation_targets_full_map(self):
        directory = InfiniteDirectory()
        entry, _ = directory.allocate(1, HEAP, 0.0)
        for cluster in (0, 5, 9):
            directory.add_sharer(entry, cluster)
        targets, broadcast = directory.invalidation_targets(entry, 16)
        assert targets == [0, 5, 9]
        assert not broadcast
        targets, _ = directory.invalidation_targets(entry, 16, exclude=5)
        assert targets == [0, 9]


class TestSparseDirectory:
    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            SparseDirectory(100, 8)
        with pytest.raises(ConfigError):
            SparseDirectory(0, 1)

    def test_set_conflict_evicts_lru(self):
        directory = SparseDirectory(8, 2)  # 4 sets x 2 ways
        a, b, c = 1, 1 + 4, 1 + 8  # same set
        ea, _ = directory.allocate(a, HEAP, 0.0)
        directory.allocate(b, HEAP, 1.0)
        directory.touch(ea)  # refresh a
        _entry, victim = directory.allocate(c, HEAP, 2.0)
        assert victim is not None and victim.line == b
        assert directory.evictions == 1

    def test_fully_associative_mode(self):
        directory = SparseDirectory(8, 8)  # 1 set
        victims = []
        for line in range(10):
            _e, victim = directory.allocate(line, HEAP, float(line))
            if victim is not None:
                victims.append(victim.line)
        assert victims == [0, 1]  # strict LRU order
        assert len(directory) == 8

    def test_get_and_delete(self):
        directory = SparseDirectory(8, 2)
        entry, _ = directory.allocate(3, HEAP, 0.0)
        assert directory.get(3) is entry
        directory.deallocate(entry, 1.0)
        assert directory.get(3) is None


class TestLimitedPointerDirectory:
    def test_overflow_sets_broadcast(self):
        directory = LimitedPointerDirectory(64, 8)
        entry, _ = directory.allocate(1, HEAP, 0.0)
        for cluster in range(4):
            directory.add_sharer(entry, cluster)
        assert not entry.broadcast
        directory.add_sharer(entry, 4)  # fifth sharer
        assert entry.broadcast

    def test_broadcast_invalidation_probes_everyone(self):
        directory = LimitedPointerDirectory(64, 8)
        entry, _ = directory.allocate(1, HEAP, 0.0)
        for cluster in range(5):
            directory.add_sharer(entry, cluster)
        targets, broadcast = directory.invalidation_targets(entry, 16)
        assert broadcast
        assert targets == list(range(16))
        targets, _ = directory.invalidation_targets(entry, 16, exclude=3)
        assert 3 not in targets and len(targets) == 15

    def test_broadcast_clears_when_empty(self):
        directory = LimitedPointerDirectory(64, 8)
        entry, _ = directory.allocate(1, HEAP, 0.0)
        for cluster in range(5):
            directory.add_sharer(entry, cluster)
        for cluster in range(5):
            directory.remove_sharer(entry, cluster)
        assert not entry.broadcast
        assert entry.n_sharers == 0


class TestBuildDirectory:
    @pytest.mark.parametrize("kind,cls", [
        (DirectoryKind.INFINITE, InfiniteDirectory),
        (DirectoryKind.SPARSE, SparseDirectory),
        (DirectoryKind.DIR4B, LimitedPointerDirectory),
    ])
    def test_factory(self, kind, cls):
        directory = build_directory(kind, 1024, 16)
        assert isinstance(directory, cls)
        assert directory.kind is kind


class TestOccupancyAccounting:
    def test_time_weighted_average(self):
        occ = _Occupancy()
        occ.on_alloc(0.0, HEAP)       # 1 entry from t=0
        occ.on_alloc(10.0, STACK)     # 2 entries from t=10
        occ.on_free(20.0, HEAP)       # 1 entry from t=20
        occ.advance(30.0)
        # integral: 1*10 + 2*10 + 1*10 = 40 entry-cycles over 30
        assert occ.weighted == pytest.approx(40.0)
        assert occ.max_count == 2
        assert occ.weighted_by_class[HEAP] == pytest.approx(20.0)
        assert occ.weighted_by_class[STACK] == pytest.approx(20.0)

    def test_advance_is_idempotent(self):
        occ = _Occupancy()
        occ.on_alloc(0.0, HEAP)
        occ.advance(10.0)
        occ.advance(10.0)
        occ.advance(5.0)  # time going backward is ignored
        assert occ.weighted == pytest.approx(10.0)

    def test_global_occupancy_shared_across_banks(self):
        shared = _Occupancy()
        banks = [InfiniteDirectory() for _ in range(2)]
        for bank in banks:
            bank.global_occupancy = shared
        e0, _ = banks[0].allocate(0, HEAP, 0.0)
        banks[1].allocate(1, HEAP, 0.0)
        assert shared.count == 2
        banks[0].deallocate(e0, 10.0)
        assert shared.count == 1
        assert shared.max_count == 2

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=60, unique=True))
    def test_count_matches_live_entries(self, lines):
        directory = InfiniteDirectory()
        entries = {}
        t = 0.0
        for line in lines:
            entries[line], _ = directory.allocate(line, HEAP, t)
            t += 1.0
        for line in lines[::2]:
            directory.deallocate(entries.pop(line), t)
            t += 1.0
        assert directory.occupancy.count == len(entries) == len(directory)
