"""Dir4B limited-pointer behaviour at sharer counts that overflow it."""

import pytest

from repro import Machine, MachineConfig, Policy
from repro.types import DirectoryKind

ADDR = 0x2100_0000
LINE = ADDR >> 5
N_CLUSTERS = 8  # > 4 pointers: overflow is reachable


@pytest.fixture
def machine():
    config = MachineConfig(track_data=True).scaled(N_CLUSTERS)
    policy = Policy(kind=Policy.hwcc_real().kind,
                    directory=DirectoryKind.DIR4B,
                    dir_entries_per_bank=4096, dir_assoc=64)
    return Machine(config, policy)


def share_widely(machine, n_sharers, t0=0.0):
    for cid in range(n_sharers):
        machine.clusters[cid].load(0, ADDR, t0 + 100.0 * cid)
    return machine.memsys.directory_of(LINE).get(LINE)


class TestOverflow:
    def test_four_sharers_stay_precise(self, machine):
        entry = share_widely(machine, 4)
        assert not entry.broadcast
        targets, bcast = machine.memsys.dirs[
            machine.memsys.map.bank_of_line(LINE)].invalidation_targets(
                entry, N_CLUSTERS)
        assert not bcast and len(targets) == 4

    def test_fifth_sharer_triggers_broadcast_mode(self, machine):
        entry = share_widely(machine, 5)
        assert entry.broadcast
        _targets, bcast = machine.memsys.dirs[
            machine.memsys.map.bank_of_line(LINE)].invalidation_targets(
                entry, N_CLUSTERS)
        assert bcast

    def test_broadcast_invalidation_probes_every_cluster(self, machine):
        share_widely(machine, 6)
        counters = machine.memsys.counters
        before = counters.probe_response
        # the seventh cluster writes: all other clusters must be probed,
        # including the non-sharers (broadcast acks)
        machine.clusters[7].store(0, ADDR, 99, 10_000.0)
        probes = counters.probe_response - before
        assert probes == N_CLUSTERS - 1
        # correctness preserved: everyone sees the new value
        for cid in range(N_CLUSTERS - 1):
            _t, value = machine.clusters[cid].load(0, ADDR, 20_000.0 + cid)
            assert value == 99

    def test_precise_invalidation_cheaper_than_broadcast(self, machine):
        counters = machine.memsys.counters
        share_widely(machine, 2)
        before = counters.probe_response
        machine.clusters[3].store(0, ADDR, 1, 10_000.0)
        precise_probes = counters.probe_response - before
        assert precise_probes == 2  # exactly the sharers

    def test_broadcast_costs_more_network_traffic(self):
        """Probes run in parallel (similar latency), but a broadcast
        moves many more messages -- the overhead the paper charges
        limited directories with."""
        def network_messages_for_write(n_sharers):
            config = MachineConfig(track_data=False).scaled(N_CLUSTERS)
            policy = Policy(kind=Policy.hwcc_real().kind,
                            directory=DirectoryKind.DIR4B,
                            dir_entries_per_bank=4096, dir_assoc=64)
            machine = Machine(config, policy)
            share_widely(machine, n_sharers)
            ms = machine.memsys
            before = ms.net.messages
            ms.write_line_request(7, LINE, 50_000.0)
            return ms.net.messages - before

        assert network_messages_for_write(6) > network_messages_for_write(2)
