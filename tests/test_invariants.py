"""Protocol invariants under randomized operation soups.

These property tests drive the full machine (clusters + directory + L3 +
transitions) with random interleavings and check the global invariants
the protocols promise:

* **single writer**: a hardware-coherent line dirty in one L2 is resident
  in no other L2, and the directory records exactly that owner;
* **directory/L2 agreement**: every coherent resident line is tracked
  with its holder in the sharer list; every directory entry's sharers
  actually hold the line;
* **incoherent bit agreement**: a resident line's incoherent bit matches
  the domain the memory system would resolve for it;
* **value delivery**: after draining, memory holds the last value written
  to every word (in race-free histories).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Policy
from repro.coherence.directory import DIR_M
from repro.types import Domain, PolicyKind

from tests.conftest import make_machine

COHERENT_HEAP = 0x2000_0000
INCOHERENT_HEAP = 0x4000_0000

N_LINES = 12  # small pool => lots of interaction


def check_global_invariants(machine):
    ms = machine.memsys
    policy = machine.policy
    for cluster in machine.clusters:
        for entry in cluster.l2.lines():
            line = entry.line
            # L1 inclusion: an L1-resident line must be in its L2.
            # (checked from the other side below)
            if not policy.uses_directory:
                assert entry.incoherent, "pure SWcc line must be incoherent"
                continue
            if entry.incoherent:
                if policy.kind is PolicyKind.COHESION:
                    swcc = (ms.coarse.lookup_line(line)
                            or ms.fine.is_swcc(line))
                    assert swcc, f"incoherent bit on HWcc line {line:#x}"
                continue
            dentry = ms.directory_of(line).get(line)
            assert dentry is not None, f"untracked coherent line {line:#x}"
            assert dentry.sharers & (1 << cluster.id), \
                f"cluster {cluster.id} not a sharer of {line:#x}"
            if entry.dirty_mask:
                assert dentry.state == DIR_M
                assert dentry.owner() == cluster.id
        # L1 subset of L2
        for l1 in list(cluster.l1d) + list(cluster.l1i):
            for l1_entry in l1.lines():
                assert cluster.l2.peek(l1_entry.line) is not None, \
                    "L1 line not backed by L2"
    if policy.uses_directory:
        for bank_dir in ms.dirs:
            for dentry in bank_dir.entries():
                holders = [c for c in dentry.sharer_ids()]
                for cid in holders:
                    held = machine.clusters[cid].l2.peek(dentry.line)
                    assert held is not None and not held.incoherent, \
                        f"stale sharer {cid} for line {dentry.line:#x}"
                if dentry.state == DIR_M:
                    assert dentry.n_sharers == 1


op_strategy = st.tuples(
    st.sampled_from(["load", "store", "atomic", "flush", "inv",
                     "evict_pressure", "to_hwcc", "to_swcc"]),
    st.integers(0, 1),            # cluster
    st.integers(0, 7),            # core
    st.integers(0, N_LINES - 1),  # line index within the pool
    st.integers(0, 7),            # word
)


class TestRandomSoup:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(op_strategy, min_size=1, max_size=80),
           st.sampled_from(["swcc", "hwcc", "cohesion"]))
    def test_invariants_hold_throughout(self, ops, policy_name):
        policy = {"swcc": Policy.swcc(), "hwcc": Policy.hwcc_ideal(),
                  "cohesion": Policy.cohesion()}[policy_name]
        machine = make_machine(policy)
        ms = machine.memsys
        # Pool: half coherent-heap lines, half incoherent-heap lines.
        pool = [(COHERENT_HEAP >> 5) + i for i in range(N_LINES // 2)]
        pool += [(INCOHERENT_HEAP >> 5) + i for i in range(N_LINES - len(pool))]
        t = 0.0
        for kind, cluster_id, core, index, word in ops:
            t += 25.0
            cluster = machine.clusters[cluster_id]
            line = pool[index]
            addr = (line << 5) + 4 * word
            if kind == "load":
                cluster.load(core, addr, t)
            elif kind == "store":
                # Avoid cross-cluster SWcc same-word races (undefined by
                # the model): only cluster 0 writes even words, cluster 1
                # odd words.
                if word % 2 == cluster_id:
                    cluster.store(core, addr, int(t), t)
            elif kind == "atomic":
                cluster.atomic(core, addr, lambda a, b: a + b, 1, t)
            elif kind == "flush":
                cluster.flush_line(core, line, t)
            elif kind == "inv":
                cluster.invalidate_line(core, line, t)
            elif kind == "evict_pressure":
                conflict = line + cluster.l2.n_sets * (core + 1)
                cluster.load(core, conflict << 5, t)
            elif kind == "to_hwcc" and policy.hybrid:
                ms.transitions.transition_line(line, Domain.HWCC, cluster_id, t)
            elif kind == "to_swcc" and policy.hybrid:
                ms.transitions.transition_line(line, Domain.SWCC, cluster_id, t)
            check_global_invariants(machine)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 7),
                              st.integers(0, N_LINES - 1), st.integers(0, 7)),
                    min_size=1, max_size=60))
    def test_hwcc_value_delivery(self, writes):
        """Under HWcc, the last store to each word always wins."""
        machine = make_machine(Policy.hwcc_ideal())
        base = COHERENT_HEAP >> 5
        expected = {}
        t = 0.0
        for cluster_id, core, index, word in writes:
            t += 40.0
            addr = ((base + index) << 5) + 4 * word
            value = len(expected) * 1000 + int(t)
            machine.clusters[cluster_id].store(core, addr, value, t)
            expected[addr] = value
            # interleave reads from the opposite cluster
            other = machine.clusters[1 - cluster_id]
            _t, seen = other.load(core, addr, t + 20.0)
            assert seen == value
            t += 40.0
        assert machine.verify_expected(expected) == []

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, N_LINES - 1),
                              st.booleans()),
                    min_size=1, max_size=40))
    def test_cohesion_domain_bit_agreement(self, moves):
        """After arbitrary transitions, resolution matches the table."""
        machine = make_machine(Policy.cohesion())
        ms = machine.memsys
        base = INCOHERENT_HEAP >> 5
        t = 0.0
        for cluster_id, index, to_hw in moves:
            t += 50.0
            line = base + index
            domain = Domain.HWCC if to_hw else Domain.SWCC
            ms.transitions.transition_line(line, domain, cluster_id, t)
            reply = ms.read_line(cluster_id, line, t + 10.0)
            assert reply.incoherent == ms.fine.is_swcc(line)
            # clean up the read's footprint to keep the soup simple
            machine.clusters[cluster_id].l2.remove(line)
            if not reply.incoherent:
                ms.read_release(cluster_id, line, t + 20.0)
