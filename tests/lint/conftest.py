"""Builders for tiny hand-made BSP programs (no kernel framework)."""

from repro import Policy
from repro.mem.address import line_of
from repro.runtime.program import Phase, Program, Task

from tests.conftest import make_machine


def task(ops, flushes=(), inputs=()):
    """A bare task: no private stack, explicit coherence metadata."""
    return Task(ops=list(ops), flush_lines=list(flushes),
                input_lines=list(inputs), stack_words=0)


def phase(name, *tasks):
    """A phase with no kernel-code footprint (nothing to ifetch)."""
    return Phase(name=name, tasks=list(tasks), code_lines=0)


def program(*phases, name="synthetic"):
    return Program(name=name, phases=list(phases))


def rule_ids(report):
    """The distinct rule ids a report tripped, sorted."""
    return sorted({d.rule for d in report.diagnostics})


def swcc_setup(n_clusters=1, value=None):
    """A pure-SWcc machine plus one incoherent-heap line.

    Returns ``(machine, word_addr, cache_line)``; when ``value`` is given
    the backing store is seeded so checked loads have a ground truth.
    """
    machine = make_machine(Policy.swcc(), n_clusters=n_clusters)
    addr = machine.api.coh_malloc(64)
    if value is not None:
        machine.memsys.backing.write_word_addr(addr, value)
    return machine, addr, line_of(addr)


def cohesion_setup(n_clusters=1):
    """A Cohesion machine plus one SWcc and one HWcc heap line."""
    machine = make_machine(Policy.cohesion(), n_clusters=n_clusters)
    sw_addr = machine.api.coh_malloc(64)
    hw_addr = machine.api.malloc(64)
    return machine, sw_addr, hw_addr
