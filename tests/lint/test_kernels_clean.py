"""Acceptance gate: every shipped kernel lints clean under every policy.

The kernels annotate their buffers with exactly the flush/invalidate
behaviour the Task-Centric Memory Model requires, so the static rules
must find nothing -- under pure SWcc (everything software-managed),
pure HWcc (nothing is), and Cohesion (only the incoherent heap is).
"""

import pytest

from repro.analysis.experiments import ExperimentConfig
from repro.cli import policy_from_name
from repro.lint import RULE_IDS, lint_workload
from repro.workloads import ALL_WORKLOADS

EXP = ExperimentConfig(n_clusters=1, scale=0.2)


@pytest.mark.parametrize("policy_name", ["swcc", "hwcc-ideal", "cohesion"])
@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_kernel_lints_clean(name, policy_name):
    report, program, machine = lint_workload(
        name, policy=policy_from_name(policy_name), exp=EXP)
    assert report.clean, report.format()
    assert report.rules_run == list(RULE_IDS)
    assert program.total_tasks > 0
