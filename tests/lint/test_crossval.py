"""Dynamic confirmation: every static finding is a true positive.

For each corrupted program the linter flags, a fully-instrumented
simulation (barrier invariant audits, per-line tracing, checked loads,
the final ``verify_expected`` sweep, and the WB/INV efficiency counters)
must exhibit the predicted failure: broken data for the COH001-COH003
errors, wasted coherence work for the COH004/COH005 warnings.
"""

from repro import Policy
from repro.lint import lint_program, run_with_oracles, watched_lines
from repro.mem.address import line_of
from repro.types import OP_ATOMIC, OP_COMPUTE, OP_LOAD, OP_STORE

from tests.conftest import make_machine
from tests.lint.conftest import phase, program, swcc_setup, task


class TestTruePositives:
    def test_coh001_missing_flush_loses_update(self):
        machine, addr, line = swcc_setup(value=5)
        prog = program(
            phase("produce", task([(OP_STORE, addr, 7)])),  # never flushed
            phase("reduce", task([(OP_ATOMIC, addr, 1)])))
        prog.expected = {addr: 8}
        [diag] = lint_program(prog, machine=machine).by_rule("COH001")
        run = run_with_oracles(machine, prog, watch=watched_lines([diag]))
        # The atomic read-modify-wrote the stale memory value: the
        # store's 7 never reached the L3, so 5+1 ran instead of 7+1.
        assert run.data_broken
        assert run.confirms(diag)

    def test_coh002_stale_cached_read(self):
        machine, addr, line = swcc_setup(value=5)
        prog = program(
            phase("warm", task([(OP_LOAD, addr, 5)])),      # never invalidated
            phase("publish", task([(OP_ATOMIC, addr, 1)])),
            phase("reread", task([(OP_LOAD, addr, 6)], inputs=[line])))
        prog.expected = {addr: 6}
        [diag] = lint_program(prog, machine=machine).by_rule("COH002")
        run = run_with_oracles(machine, prog, watch=watched_lines([diag]))
        # The re-read hit the phase-0 cached copy and observed 5, not 6.
        assert (addr, 6, 5) in run.mismatches
        assert run.confirms(diag)

    def test_coh003_intra_phase_race_observed(self):
        machine, addr, line = swcc_setup(value=5)
        racer = task([(OP_COMPUTE, 20_000), (OP_STORE, addr, 9)],
                     flushes=[line])
        reader = task([(OP_LOAD, addr, 9)])
        prog = program(phase("race", racer, reader))
        prog.expected = {addr: 9}
        [diag] = lint_program(prog, machine=machine).by_rule("COH003")
        run = run_with_oracles(machine, prog, watch=watched_lines([diag]))
        # The reader ran long before the delayed store it depends on.
        assert (addr, 9, 5) in run.mismatches
        assert run.confirms(diag)

    def test_coh004_useless_flush_of_hwcc_line(self):
        machine = make_machine(Policy.cohesion(), n_clusters=1)
        addr = machine.api.malloc(64)
        hw_line = line_of(addr)
        prog = program(phase(
            "p", task([(OP_LOAD, addr)], flushes=[hw_line])))
        [diag] = lint_program(prog, machine=machine).by_rule("COH004")
        run = run_with_oracles(machine, prog, watch=[hw_line])
        # The WB found a hardware-maintained (clean) copy: pure waste.
        assert run.clean_wb >= 1
        assert run.confirms(diag)
        assert not run.protocol_broken

    def test_coh005_duplicate_flush_wastes_wb(self):
        machine, addr, line = swcc_setup(value=5)
        prog = program(phase(
            "p", task([(OP_STORE, addr, 7)], flushes=[line, line])))
        prog.expected = {addr: 7}
        [diag] = lint_program(prog, machine=machine).by_rule("COH005")
        run = run_with_oracles(machine, prog, watch=[line])
        # The second WB found the line already clean.
        assert run.clean_wb >= 1
        assert run.confirms(diag)
        assert not run.data_broken


class TestCleanControl:
    def test_correct_program_runs_clean(self):
        machine, addr, line = swcc_setup(value=5)
        prog = program(
            phase("produce", task([(OP_STORE, addr, 7)], flushes=[line])),
            phase("consume", task([(OP_LOAD, addr, 7)], inputs=[line])))
        prog.expected = {addr: 7}
        assert lint_program(prog, machine=machine).clean
        run = run_with_oracles(machine, prog, watch=[line])
        assert not run.protocol_broken
        assert run.wasted_wb == 0 and run.clean_wb == 0
        assert run.wasted_inv == 0
        # The tracer saw the store, the flush, and the lazy invalidate.
        kinds = {event.kind for event in run.trace.events}
        assert {"store", "flush", "inv"} <= kinds

    def test_oracle_attaches_checker_to_every_barrier(self):
        machine, addr, line = swcc_setup(value=5)
        prog = program(
            phase("a", task([(OP_LOAD, addr, 5)])),
            phase("b", task([(OP_LOAD, addr, 5)])))
        run = run_with_oracles(machine, prog, trace=False)
        # Two phase barriers plus the final explicit audit.
        assert run.stats.barriers == 2
        assert not run.violations
        assert run.trace is None
