"""Each lint rule against minimal corrupted programs and their clean twins."""

import json

import pytest

from repro import Policy
from repro.lint import DomainModel, Severity, lint_program
from repro.mem.address import WORD_BYTES, line_of
from repro.types import (OP_ATOMIC, OP_INV, OP_LOAD, OP_STORE, OP_WB,
                         PolicyKind)

from tests.conftest import make_machine
from tests.lint.conftest import (cohesion_setup, phase, program, rule_ids,
                                 swcc_setup, task)


class TestCOH001MissingFlush:
    def test_unflushed_store_read_later(self):
        machine, addr, line = swcc_setup()
        prog = program(
            phase("produce", task([(OP_STORE, addr, 7)])),
            phase("consume", task([(OP_LOAD, addr)], inputs=[line])))
        report = lint_program(prog, machine=machine)
        assert rule_ids(report) == ["COH001"]
        [diag] = report.diagnostics
        assert diag.severity is Severity.ERROR
        assert diag.phase == 0 and diag.task == 0 and diag.line == line

    def test_flush_silences(self):
        machine, addr, line = swcc_setup()
        prog = program(
            phase("produce", task([(OP_STORE, addr, 7)], flushes=[line])),
            phase("consume", task([(OP_LOAD, addr)], inputs=[line])))
        assert lint_program(prog, machine=machine).clean

    def test_inline_wb_counts_as_flush(self):
        machine, addr, line = swcc_setup()
        prog = program(
            phase("produce", task([(OP_STORE, addr, 7), (OP_WB, addr)])),
            phase("consume", task([(OP_LOAD, addr)], inputs=[line])))
        assert lint_program(prog, machine=machine).clean

    def test_atomic_consumer_counts(self):
        # An uncached atomic reads the line's memory value at the L3, so
        # an unflushed store feeding it is just as lost.
        machine, addr, line = swcc_setup()
        prog = program(
            phase("produce", task([(OP_STORE, addr, 7)])),
            phase("reduce", task([(OP_ATOMIC, addr, 1)])))
        assert rule_ids(lint_program(prog, machine=machine)) == ["COH001"]

    def test_unconsumed_store_is_fine(self):
        machine, addr, line = swcc_setup()
        prog = program(phase("produce", task([(OP_STORE, addr, 7)])))
        assert lint_program(prog, machine=machine).clean


class TestCOH002MissingInvalidate:
    def _three_phase(self, machine, addr, line, warm_inputs):
        return program(
            phase("warm", task([(OP_LOAD, addr)], inputs=warm_inputs)),
            phase("publish", task([(OP_ATOMIC, addr, 1)])),
            phase("reread", task([(OP_LOAD, addr)], inputs=[line])))

    def test_stale_cached_copy(self):
        machine, addr, line = swcc_setup()
        prog = self._three_phase(machine, addr, line, warm_inputs=[])
        report = lint_program(prog, machine=machine)
        assert rule_ids(report) == ["COH002"]
        [diag] = report.diagnostics
        assert diag.phase == 0 and diag.line == line
        assert diag.severity is Severity.ERROR

    def test_invalidate_silences(self):
        machine, addr, line = swcc_setup()
        prog = self._three_phase(machine, addr, line, warm_inputs=[line])
        assert lint_program(prog, machine=machine).clean

    def test_flushed_store_publisher_also_trips(self):
        machine, addr, line = swcc_setup()
        prog = program(
            phase("warm", task([(OP_LOAD, addr)])),
            phase("publish", task([(OP_STORE, addr, 9)], flushes=[line])),
            phase("reread", task([(OP_LOAD, addr)], inputs=[line])))
        assert rule_ids(lint_program(prog, machine=machine)) == ["COH002"]

    def test_no_rewrite_is_fine(self):
        machine, addr, line = swcc_setup()
        prog = program(
            phase("warm", task([(OP_LOAD, addr)])),
            phase("reread", task([(OP_LOAD, addr)])))
        assert lint_program(prog, machine=machine).clean

    def test_no_later_read_is_fine(self):
        # Cached copy goes stale but nobody ever cache-reads it again.
        machine, addr, line = swcc_setup()
        prog = program(
            phase("warm", task([(OP_LOAD, addr)])),
            phase("publish", task([(OP_ATOMIC, addr, 1)])))
        assert lint_program(prog, machine=machine).clean


class TestCOH003IntraPhaseRace:
    def test_store_store_conflict(self):
        machine, addr, line = swcc_setup()
        prog = program(phase(
            "race",
            task([(OP_STORE, addr, 1)], flushes=[line]),
            task([(OP_STORE, addr, 2)], flushes=[line])))
        report = lint_program(prog, machine=machine)
        assert rule_ids(report) == ["COH003"]
        [diag] = report.diagnostics
        assert diag.severity is Severity.ERROR and diag.line == line

    def test_store_load_conflict(self):
        machine, addr, line = swcc_setup()
        prog = program(phase(
            "race",
            task([(OP_STORE, addr, 1)], flushes=[line]),
            task([(OP_LOAD, addr)])))
        assert rule_ids(lint_program(prog, machine=machine)) == ["COH003"]

    def test_store_atomic_conflict(self):
        machine, addr, line = swcc_setup()
        prog = program(phase(
            "race",
            task([(OP_STORE, addr, 1)], flushes=[line]),
            task([(OP_ATOMIC, addr, 1)])))
        assert rule_ids(lint_program(prog, machine=machine)) == ["COH003"]

    def test_disjoint_words_of_one_line_ok(self):
        # Per-word dirty masks merge safely at the L3: tasks may share a
        # line as long as they write disjoint words.
        machine, addr, line = swcc_setup()
        prog = program(phase(
            "split",
            task([(OP_STORE, addr, 1)], flushes=[line]),
            task([(OP_STORE, addr + WORD_BYTES, 2)], flushes=[line])))
        assert lint_program(prog, machine=machine).clean

    def test_atomic_atomic_ok(self):
        machine, addr, line = swcc_setup()
        prog = program(phase(
            "reduce",
            task([(OP_ATOMIC, addr, 1)]),
            task([(OP_ATOMIC, addr, 1)])))
        assert lint_program(prog, machine=machine).clean

    def test_load_load_ok(self):
        machine, addr, line = swcc_setup()
        prog = program(phase(
            "readers",
            task([(OP_LOAD, addr)]),
            task([(OP_LOAD, addr)])))
        assert lint_program(prog, machine=machine).clean

    def test_same_task_not_a_race(self):
        machine, addr, line = swcc_setup()
        prog = program(phase(
            "rmw", task([(OP_LOAD, addr), (OP_STORE, addr, 3)],
                        flushes=[line])))
        assert lint_program(prog, machine=machine).clean


class TestCOH004DomainMisuse:
    def test_flush_of_hwcc_line_warns(self):
        machine, sw_addr, hw_addr = cohesion_setup()
        prog = program(phase(
            "p", task([(OP_LOAD, hw_addr)], flushes=[line_of(hw_addr)])))
        report = lint_program(prog, machine=machine)
        assert rule_ids(report) == ["COH004"]
        [diag] = report.diagnostics
        assert diag.severity is Severity.WARNING
        assert diag.line == line_of(hw_addr)

    def test_invalidate_of_hwcc_line_warns(self):
        machine, sw_addr, hw_addr = cohesion_setup()
        prog = program(phase(
            "p", task([(OP_LOAD, hw_addr)], inputs=[line_of(hw_addr)])))
        assert rule_ids(lint_program(prog, machine=machine)) == ["COH004"]

    def test_sw_line_ops_fine(self):
        machine, sw_addr, hw_addr = cohesion_setup()
        line = line_of(sw_addr)
        prog = program(
            phase("w", task([(OP_STORE, sw_addr, 1)], flushes=[line])),
            phase("r", task([(OP_LOAD, sw_addr)], inputs=[line])))
        assert lint_program(prog, machine=machine).clean

    def test_coarse_region_is_swcc(self):
        # Globals live in a boot-time coarse SWcc region, so software
        # coherence ops aimed there are legitimate under Cohesion.
        machine, _sw, _hw = cohesion_setup()
        addr = machine.runtime.static_alloc(64)
        line = line_of(addr)
        prog = program(
            phase("w", task([(OP_STORE, addr, 1)], flushes=[line])),
            phase("r", task([(OP_LOAD, addr)], inputs=[line])))
        assert lint_program(prog, machine=machine).clean

    def test_everything_warns_on_pure_hwcc(self):
        machine = make_machine(Policy.hwcc_ideal(), n_clusters=1)
        addr = machine.api.malloc(64)
        prog = program(phase(
            "p", task([(OP_LOAD, addr)], flushes=[line_of(addr)])))
        assert rule_ids(lint_program(prog, machine=machine)) == ["COH004"]


class TestCOH005RedundantOp:
    def test_duplicate_flush_warns(self):
        machine, addr, line = swcc_setup()
        prog = program(phase(
            "p", task([(OP_STORE, addr, 7)], flushes=[line, line])))
        report = lint_program(prog, machine=machine)
        assert rule_ids(report) == ["COH005"]
        [diag] = report.diagnostics
        assert diag.severity is Severity.WARNING and diag.line == line

    def test_duplicate_invalidate_warns(self):
        machine, addr, line = swcc_setup()
        prog = program(phase(
            "p", task([(OP_LOAD, addr)], inputs=[line, line])))
        assert rule_ids(lint_program(prog, machine=machine)) == ["COH005"]

    def test_inline_wb_plus_flush_list_warns(self):
        machine, addr, line = swcc_setup()
        prog = program(phase(
            "p", task([(OP_STORE, addr, 7), (OP_WB, addr)], flushes=[line])))
        assert rule_ids(lint_program(prog, machine=machine)) == ["COH005"]

    def test_single_ops_clean(self):
        machine, addr, line = swcc_setup()
        prog = program(phase(
            "p", task([(OP_STORE, addr, 7)], flushes=[line], inputs=[line])))
        assert lint_program(prog, machine=machine).clean


class TestCOH006AtomicSwcc:
    def test_atomic_to_swcc_line_warns(self):
        machine, sw_addr, hw_addr = cohesion_setup()
        prog = program(phase("reduce", task([(OP_ATOMIC, sw_addr, 1)])))
        report = lint_program(prog, machine=machine)
        assert rule_ids(report) == ["COH006"]
        [diag] = report.diagnostics
        assert diag.severity is Severity.WARNING
        assert diag.line == line_of(sw_addr)
        assert "malloc" in diag.hint

    def test_atomic_to_hwcc_line_clean(self):
        machine, sw_addr, hw_addr = cohesion_setup()
        prog = program(phase("reduce", task([(OP_ATOMIC, hw_addr, 1)])))
        assert lint_program(prog, machine=machine).clean

    def test_pure_swcc_machine_exempt(self):
        # The SWcc baseline has no coherent heap to move the data to;
        # its atomics are legitimate by construction.
        machine, addr, line = swcc_setup()
        prog = program(phase("reduce", task([(OP_ATOMIC, addr, 1)])))
        assert lint_program(prog, machine=machine,
                            rules=["COH006"]).clean

    def test_coarse_region_also_flagged(self):
        # Globals sit in a boot-time coarse SWcc region under Cohesion:
        # an atomic aimed there has the same lost-update hazard.
        machine, _sw, _hw = cohesion_setup()
        addr = machine.runtime.static_alloc(64)
        prog = program(phase("reduce", task([(OP_ATOMIC, addr, 1)])))
        assert rule_ids(lint_program(prog, machine=machine)) == ["COH006"]


class TestFramework:
    def test_program_lint_method(self):
        machine, addr, line = swcc_setup()
        prog = program(phase("p", task([(OP_STORE, addr, 7)])))
        report = prog.lint(machine=machine)
        assert report.clean and report.program == "synthetic"

    def test_rule_selection(self):
        machine, addr, line = swcc_setup()
        prog = program(
            phase("produce", task([(OP_STORE, addr, 7)])),
            phase("consume", task([(OP_LOAD, addr)], inputs=[line, line])))
        full = lint_program(prog, machine=machine)
        assert rule_ids(full) == ["COH001", "COH005"]
        only = lint_program(prog, machine=machine, rules=["coh005"])
        assert rule_ids(only) == ["COH005"]
        assert only.rules_run == ["COH005"]

    def test_unknown_rule_rejected(self):
        machine, addr, line = swcc_setup()
        prog = program(phase("p", task([(OP_LOAD, addr)])))
        with pytest.raises(KeyError, match="COH999"):
            lint_program(prog, machine=machine, rules=["COH999"])

    def test_needs_machine_or_domain(self):
        prog = program(phase("p", task([])))
        with pytest.raises(ValueError):
            lint_program(prog)

    def test_explicit_domain_model(self):
        # A DomainModel stands in for the machine: pure SWcc needs no
        # region tables at all.
        prog = program(
            phase("produce", task([(OP_STORE, 0x2000_0000, 7)])),
            phase("consume", task([(OP_LOAD, 0x2000_0000)],
                                  inputs=[line_of(0x2000_0000)])))
        domain = DomainModel(PolicyKind.SWCC)
        assert rule_ids(lint_program(prog, domain=domain)) == ["COH001"]

    def test_report_text_and_json(self):
        machine, addr, line = swcc_setup()
        prog = program(
            phase("produce", task([(OP_STORE, addr, 7)])),
            phase("consume", task([(OP_LOAD, addr)], inputs=[line])))
        report = lint_program(prog, machine=machine)
        text = report.format()
        assert "COH001" in text and "1 error(s), 0 warning(s)" in text
        data = json.loads(report.to_json())
        assert data["errors"] == 1 and data["clean"] is False
        assert data["diagnostics"][0]["rule"] == "COH001"
        assert data["diagnostics"][0]["hint"]

    def test_diagnostics_sorted_and_capped(self):
        machine, addr, line = swcc_setup()
        phases = [phase("w", task([(OP_STORE, addr + 32 * i, 1)]))
                  for i in range(5)]
        phases.append(phase("r", task(
            [(OP_LOAD, addr + 32 * i) for i in range(5)],
            inputs=[line + i for i in range(5)])))
        prog = program(*phases)
        report = lint_program(prog, machine=machine,
                              max_diagnostics_per_rule=3)
        assert len(report.by_rule("COH001")) == 3
        lines = [d.line for d in report.diagnostics]
        assert lines == sorted(lines)

    def test_diagnostics_ordered_by_line_then_rule(self):
        # Cross-rule determinism: (line address, rule id) is the primary
        # sort, so JSON output is usable as a CI golden file.
        machine, sw_addr, hw_addr = cohesion_setup()
        hw_line = line_of(hw_addr)
        prog = program(phase("p", task(
            [(OP_ATOMIC, sw_addr, 1), (OP_LOAD, hw_addr)],
            flushes=[hw_line, hw_line])))
        report = lint_program(prog, machine=machine)
        keyed = [(d.line, d.rule) for d in report.diagnostics]
        assert keyed == sorted(keyed)
        # hw line < sw line: COH004/COH005 anchor there and come first,
        # in rule-id order; COH006 anchors on the (higher) SWcc line.
        assert [d.rule for d in report.diagnostics] == \
            ["COH004", "COH005", "COH006"]
        assert json.loads(report.to_json()) == json.loads(report.to_json())
