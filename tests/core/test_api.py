"""The Table 2 software API."""

import pytest

from repro import Policy
from repro.errors import AllocationError
from repro.mem.address import lines_in_range

from tests.conftest import make_machine


@pytest.fixture
def machine():
    return make_machine(Policy.cohesion())


class TestHeapPlacement:
    def test_malloc_on_coherent_heap(self, machine):
        layout = machine.layout
        ptr = machine.api.malloc(100)
        assert layout.coherent_heap_base <= ptr < (
            layout.coherent_heap_base + layout.coherent_heap_size)

    def test_coh_malloc_on_incoherent_heap(self, machine):
        layout = machine.layout
        ptr = machine.api.coh_malloc(100)
        assert layout.incoherent_heap_base <= ptr < (
            layout.incoherent_heap_base + layout.incoherent_heap_size)

    def test_coh_malloc_64_byte_min(self, machine):
        a = machine.api.coh_malloc(1)
        b = machine.api.coh_malloc(1)
        assert b - a >= 64
        assert a % 64 == 0

    def test_free_roundtrip(self, machine):
        api = machine.api
        ptr = api.malloc(64)
        api.free(ptr)
        assert api.malloc(64) == ptr
        cptr = api.coh_malloc(64)
        api.coh_free(cptr)
        assert api.coh_malloc(64) == cptr

    def test_cross_heap_free_rejected(self, machine):
        api = machine.api
        ptr = api.malloc(64)
        with pytest.raises(AllocationError):
            api.coh_free(ptr)


class TestDomains:
    def test_malloc_data_is_hwcc(self, machine):
        ptr = machine.api.malloc(64)
        assert not machine.memsys.read_line(0, ptr >> 5, 0.0).incoherent

    def test_coh_malloc_initially_swcc(self, machine):
        """Table 2: initial state is SWcc, not present in any cache."""
        ptr = machine.api.coh_malloc(128)
        for line in lines_in_range(ptr, 128):
            assert machine.memsys.fine.is_swcc(line)
            for cluster in machine.clusters:
                assert cluster.peek_line(line) is None

    def test_coh_HWcc_region_transitions(self, machine):
        api = machine.api
        ptr = api.coh_malloc(256)
        api.coh_HWcc_region(ptr, 256)
        for line in lines_in_range(ptr, 256):
            assert not machine.memsys.fine.is_swcc(line)
        assert not machine.memsys.read_line(0, ptr >> 5, 1e6).incoherent

    def test_coh_SWcc_region_transitions_back(self, machine):
        api = machine.api
        ptr = api.coh_malloc(256)
        api.coh_HWcc_region(ptr, 256)
        api.coh_SWcc_region(ptr, 256)
        for line in lines_in_range(ptr, 256):
            assert machine.memsys.fine.is_swcc(line)

    def test_region_calls_can_target_any_range(self, machine):
        """coh_*_region works on HWcc-heap data too (Table 2: data may
        be HWcc or SWcc)."""
        ptr = machine.api.malloc(64)
        machine.api.coh_SWcc_region(ptr, 64)
        assert machine.memsys.read_line(0, ptr >> 5, 1e6).incoherent

    def test_region_validation(self, machine):
        with pytest.raises(AllocationError):
            machine.api.coh_SWcc_region(0x1000, 0)
        with pytest.raises(AllocationError):
            machine.api.coh_HWcc_region(0xFFFFFFF0, 0x100)

    def test_api_is_noop_for_non_hybrid_policies(self):
        machine = make_machine(Policy.swcc())
        ptr = machine.api.coh_malloc(128)
        before = machine.memsys.counters.total()
        machine.api.coh_HWcc_region(ptr, 128)
        machine.api.coh_SWcc_region(ptr, 128)
        assert machine.memsys.counters.total() == before

    def test_transitions_advance_issuing_core_clock(self, machine):
        ptr = machine.api.coh_malloc(64)
        machine.api.coh_HWcc_region(ptr, 64)
        assert machine.core_clocks[0] > 0.0
        assert machine.core_clocks[1] == 0.0

    def test_transition_traffic_is_counted(self, machine):
        ptr = machine.api.coh_malloc(64)
        before = machine.memsys.counters.uncached_atomic
        machine.api.coh_HWcc_region(ptr, 64)
        assert machine.memsys.counters.uncached_atomic > before
