"""Transition-protocol edge cases beyond the Figure 7 basics."""

import pytest

from repro import Machine, MachineConfig, Policy
from repro.types import DirectoryKind, Domain

from tests.conftest import make_machine

INC = 0x4000_0000
HEAP = 0x2100_0000


@pytest.fixture
def machine():
    return make_machine(Policy.cohesion())


class TestTransitionsUnderRealisticDirectories:
    def test_to_hwcc_under_dir4b_with_many_holders(self):
        """A SWcc line clean in >4 L2s becomes a broadcast-mode entry."""
        config = MachineConfig(track_data=True).scaled(8)
        policy = Policy.cohesion(entries_per_bank=4096, assoc=64,
                                 directory=DirectoryKind.DIR4B)
        machine = Machine(config, policy)
        line = INC >> 5
        for cid in range(6):
            machine.clusters[cid].load(0, INC, 100.0 * cid)
        machine.memsys.transitions.to_hwcc(line, 0, 10_000.0)
        entry = machine.memsys.directory_of(line).get(line)
        assert entry is not None
        assert entry.n_sharers == 6
        assert entry.broadcast  # 6 > 4 pointers

    def test_to_hwcc_can_force_directory_eviction(self):
        """Allocating the transition's entry can evict another entry,
        whose sharers must be invalidated mid-transition."""
        machine = make_machine(
            Policy.cohesion(entries_per_bank=2, assoc=2))
        ms = machine.memsys
        # occupy the tiny directory with coherent-heap lines
        machine.clusters[0].load(0, HEAP, 0.0)
        machine.clusters[0].load(0, HEAP + 32, 10.0)
        assert ms.total_directory_entries() == 2
        # a SWcc line held clean transitions in, forcing an eviction
        machine.clusters[1].load(0, INC, 20.0)
        ms.transitions.to_hwcc(INC >> 5, 0, 1000.0)
        assert ms.total_directory_entries() <= 2
        entry = ms.directory_of(INC >> 5).get(INC >> 5)
        assert entry is not None and entry.sharer_ids() == [1]


class TestRepeatedAndConcurrentConversions:
    def test_round_trip_preserves_value_every_time(self, machine):
        ms = machine.memsys
        addr = INC + 0x40
        line = addr >> 5
        machine.clusters[0].store(0, addr, 1234, 0.0)
        machine.clusters[0].flush_line(0, line, 10.0)
        t = 1000.0
        for _round in range(4):
            t = ms.transitions.to_hwcc(line, 0, t)
            t = ms.transitions.to_swcc(line, 1, t)
        reply = ms.read_line(0, line, t + 100.0)
        assert reply.incoherent and reply.data[0] == 1234

    def test_interleaved_region_conversions_disjoint_ranges(self, machine):
        ms = machine.memsys
        a, b = INC, INC + 0x1000
        ms.transitions.convert_region(a, 0x400, Domain.HWCC, 0, 0.0)
        ms.transitions.convert_region(b, 0x400, Domain.HWCC, 1, 0.0)
        ms.transitions.convert_region(a, 0x400, Domain.SWCC, 1, 1e5)
        for line in range(a >> 5, (a + 0x400) >> 5):
            assert ms.fine.is_swcc(line)
        for line in range(b >> 5, (b + 0x400) >> 5):
            assert not ms.fine.is_swcc(line)

    def test_transition_of_dirty_line_mid_use(self, machine):
        """A writer's in-flight SWcc dirty data survives HWcc conversion
        as the single-owner upgrade, then flows through HWcc probes."""
        ms = machine.memsys
        addr = INC + 0x80
        line = addr >> 5
        machine.clusters[0].store(0, addr, 7, 0.0)       # unflushed SWcc
        ms.transitions.to_hwcc(line, 1, 1000.0)           # upgrade in place
        _t, seen = machine.clusters[1].load(0, addr, 2000.0)
        assert seen == 7                                  # pulled via HWcc


class TestCoarseRegionInteraction:
    def test_fine_bit_irrelevant_inside_coarse_region(self, machine):
        """Coarse regions resolve before the fine table, so stacks stay
        SWcc regardless of stray fine-table bits."""
        ms = machine.memsys
        stack_line = machine.layout.stack_base >> 5
        ms.fine.clear_swcc(stack_line)  # stray bit: would mean HWcc
        reply = ms.read_line(0, stack_line, 0.0)
        assert reply.incoherent

    def test_transitioning_heap_does_not_touch_neighbours(self, machine):
        ms = machine.memsys
        base = INC + 0x2000
        ms.transitions.convert_region(base + 32, 32, Domain.HWCC, 0, 0.0)
        assert ms.fine.is_swcc(base >> 5)
        assert not ms.fine.is_swcc((base + 32) >> 5)
        assert ms.fine.is_swcc((base + 64) >> 5)
