"""The hybrid.tbloff hashing instruction (footnote 1)."""

from hypothesis import given, settings, strategies as st

from repro.core.tbloff import (flat_bit_number, table_bit_index,
                               table_entry_addr, table_slot, tbloff)
from repro.runtime.layout import FINE_TABLE_BYTES

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestBitFields:
    def test_bit_index_uses_addr_9_to_5(self):
        assert table_bit_index(0) == 0
        assert table_bit_index(1 << 5) == 1
        assert table_bit_index(0x3E0) == 31
        assert table_bit_index(1 << 10) == 0  # bit 10 is in the word offset

    def test_word_offset_is_word_aligned(self):
        for addr in (0, 0x123456, 0xFFFFFFFF):
            assert tbloff(addr) % 4 == 0

    def test_low_line_bits_share_a_word(self):
        """32 consecutive lines (1 KB) map to 32 bits of one word."""
        base = 0x40000000
        offsets = {tbloff(base + 32 * i) for i in range(32)}
        bits = {table_bit_index(base + 32 * i) for i in range(32)}
        assert len(offsets) == 1
        assert bits == set(range(32))

    def test_channel_stride_bits_in_offset(self):
        """addr[13..11] land in word-offset bits [13..11] (footnote 1)."""
        base = 0x40000000
        for channel in range(8):
            addr = base | (channel << 11)
            word_offset = tbloff(addr) >> 2
            assert (word_offset >> 11) & 0x7 == channel

    def test_table_entry_addr(self):
        assert table_entry_addr(0xFE000000, 0) == 0xFE000000
        addr = 0x1234_5678
        assert table_entry_addr(0xFE000000, addr) == 0xFE000000 + tbloff(addr)

    def test_slot_composition(self):
        addr = 0xCAFE_BABE
        offset, bit = table_slot(addr)
        assert offset == tbloff(addr)
        assert bit == table_bit_index(addr)


class TestBijection:
    """The mapping is a permutation of the 27 line-address bits."""

    def test_offset_fits_16mb_table(self):
        for addr in (0, 0xFFFFFFFF, 0x80000000, 0x12345678):
            assert 0 <= tbloff(addr) < FINE_TABLE_BYTES

    @given(addresses)
    def test_offset_always_in_table(self, addr):
        assert 0 <= tbloff(addr) < FINE_TABLE_BYTES

    @given(addresses, addresses)
    def test_distinct_lines_distinct_bits(self, a, b):
        if (a >> 5) != (b >> 5):
            assert flat_bit_number(a) != flat_bit_number(b)
        else:
            assert flat_bit_number(a) == flat_bit_number(b)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 27) - 1))
    def test_line_bits_fully_determine_slot(self, line):
        addr_a = line << 5
        addr_b = (line << 5) | 0x1F  # different byte within the line
        assert table_slot(addr_a) == table_slot(addr_b)

    def test_exhaustive_injectivity_on_a_window(self):
        """Every line of a 1 MB window maps to a unique table bit."""
        seen = set()
        for line in range(0x40000000 >> 5, (0x40000000 + (1 << 20)) >> 5):
            bit = flat_bit_number(line << 5)
            assert bit not in seen
            seen.add(bit)
        assert len(seen) == (1 << 20) // 32
