"""L3 data-array behaviour: fills, partial lines, victim writebacks."""

import pytest

from repro import Policy
from repro.mem.address import FULL_WORD_MASK
from repro.types import MessageType

from tests.conftest import make_machine

INC = 0x4000_0000


@pytest.fixture
def machine():
    return make_machine(Policy.swcc())


def fill_values(ms, line, values):
    for word, value in enumerate(values):
        ms.backing.write_word_addr((line << 5) + 4 * word, value)


class TestFills:
    def test_read_miss_fills_from_backing(self, machine):
        ms = machine.memsys
        line = INC >> 5
        fill_values(ms, line, [10, 11, 12, 13, 14, 15, 16, 17])
        t, entry = ms._l3_access(0, line, 0.0)
        assert entry.fully_valid
        assert entry.data == [10, 11, 12, 13, 14, 15, 16, 17]
        assert t >= ms.dram.latency

    def test_second_access_is_an_l3_hit(self, machine):
        ms = machine.memsys
        line = INC >> 5
        ms._l3_access(0, line, 0.0)
        before = ms.dram.total_accesses
        t0 = 10_000.0
        t, _entry = ms._l3_access(0, line, t0)
        assert ms.dram.total_accesses == before
        assert t - t0 < ms.dram.latency

    def test_write_without_fetch_creates_partial_line(self, machine):
        ms = machine.memsys
        line = INC >> 5
        t, entry = ms._l3_access(0, line, 0.0, write_mask=0b0011,
                                 write_values=[1, 2, 0, 0, 0, 0, 0, 0],
                                 need_data=False)
        assert entry.valid_mask == 0b0011
        assert entry.dirty_mask == 0b0011
        assert t < ms.dram.latency  # no fill happened

    def test_partial_line_read_merges_from_memory(self, machine):
        ms = machine.memsys
        line = INC >> 5
        fill_values(ms, line, [100] * 8)
        ms._l3_access(0, line, 0.0, write_mask=0b0001,
                      write_values=[55, 0, 0, 0, 0, 0, 0, 0],
                      need_data=False)
        _t, entry = ms._l3_access(0, line, 1000.0)  # full read
        assert entry.fully_valid
        assert entry.data[0] == 55     # dirty word preserved
        assert entry.data[1] == 100    # missing words fetched

    def test_victim_dirty_words_reach_backing(self, machine):
        ms = machine.memsys
        bank_cache = ms.l3[0]
        # fill one set completely with dirty partial lines, then overflow
        n_ways = bank_cache.assoc
        lines = [(INC >> 5) + i * bank_cache.n_sets for i in range(n_ways + 1)]
        for i, line in enumerate(lines):
            ms._l3_access(0, line, 100.0 * i, write_mask=0b1,
                          write_values=[1000 + i] + [0] * 7, need_data=False)
        evicted = [line for line in lines if bank_cache.peek(line) is None]
        assert evicted
        for line in evicted:
            assert ms.backing.read_line_word(line, 0) >= 1000


class TestAtomicDataPath:
    def test_atomic_on_uncached_line(self, machine):
        ms = machine.memsys
        addr = INC + 0x100
        ms.backing.write_word_addr(addr, 41)
        _t, old = ms.atomic(0, addr, lambda a, b: a + b, 1, 0.0)
        assert old == 41
        # the updated value lives in the L3 (dirty), visible to reads
        reply = ms.read_line(1, addr >> 5, 10_000.0)
        assert reply.data[(addr >> 2) & 7] == 42

    def test_atomic_value_survives_l3_eviction(self, machine):
        ms = machine.memsys
        addr = INC + 0x200
        ms.atomic(0, addr, lambda a, b: a + b, 7, 0.0)
        machine.drain_caches()
        assert ms.backing.read_word_addr(addr) == 7


class TestFlushMergeSemantics:
    def test_three_writers_disjoint_words_all_merge(self, machine):
        ms = machine.memsys
        line = (INC + 0x400) >> 5
        masks_values = [
            (0b0000_0011, [1, 2, 0, 0, 0, 0, 0, 0]),
            (0b0000_1100, [0, 0, 3, 4, 0, 0, 0, 0]),
            (0b1111_0000, [0, 0, 0, 0, 5, 6, 7, 8]),
        ]
        for cluster_id, (mask, values) in enumerate(masks_values):
            ms.writeback(cluster_id % 2, line, mask, values, 100.0 * cluster_id,
                         MessageType.SOFTWARE_FLUSH, incoherent=True)
        reply = ms.read_line(0, line, 10_000.0)
        assert reply.data == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_later_flush_of_same_word_wins(self, machine):
        ms = machine.memsys
        line = (INC + 0x500) >> 5
        ms.writeback(0, line, 0b1, [10, 0, 0, 0, 0, 0, 0, 0], 0.0,
                     MessageType.SOFTWARE_FLUSH, incoherent=True)
        ms.writeback(1, line, 0b1, [20, 0, 0, 0, 0, 0, 0, 0], 50.0,
                     MessageType.SOFTWARE_FLUSH, incoherent=True)
        reply = ms.read_line(0, line, 10_000.0)
        assert reply.data[0] == 20
