"""Coarse- and fine-grain region tables."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.region_table import (CoarseRegionTable, FineRegionTable)
from repro.core.tbloff import table_entry_addr
from repro.errors import RegionError


class TestCoarseRegionTable:
    def test_lookup_hit_and_miss(self):
        table = CoarseRegionTable()
        table.add(0x1000, 0x1000, name="code")
        assert table.lookup(0x1000)
        assert table.lookup(0x1FFF)
        assert not table.lookup(0x2000)
        assert not table.lookup(0xFFF)

    def test_lookup_line(self):
        table = CoarseRegionTable()
        table.add(0x1000, 0x1000)
        assert table.lookup_line(0x1000 >> 5)
        assert not table.lookup_line((0x2000 >> 5))

    def test_invalid_entries_ignored(self):
        table = CoarseRegionTable()
        region = table.add(0x1000, 0x1000)
        region.valid = False
        assert not table.lookup(0x1800)

    def test_alignment_required(self):
        table = CoarseRegionTable()
        with pytest.raises(RegionError):
            table.add(0x1001, 0x1000)
        with pytest.raises(RegionError):
            table.add(0x1000, 0x101)

    def test_size_must_be_positive(self):
        table = CoarseRegionTable()
        with pytest.raises(RegionError):
            table.add(0x1000, 0)

    def test_overlap_rejected(self):
        table = CoarseRegionTable()
        table.add(0x1000, 0x1000)
        with pytest.raises(RegionError):
            table.add(0x1800, 0x1000)
        with pytest.raises(RegionError):
            table.add(0x0000, 0x1020)
        table.add(0x2000, 0x1000)  # adjacent is fine

    def test_capacity_limit(self):
        table = CoarseRegionTable(capacity=2)
        table.add(0x1000, 0x20)
        table.add(0x2000, 0x20)
        with pytest.raises(RegionError):
            table.add(0x3000, 0x20)

    def test_remove(self):
        table = CoarseRegionTable()
        region = table.add(0x1000, 0x1000)
        table.remove(region)
        assert not table.lookup(0x1000)
        with pytest.raises(RegionError):
            table.remove(region)

    def test_iteration_and_len(self):
        table = CoarseRegionTable()
        table.add(0x1000, 0x20, name="a")
        table.add(0x2000, 0x20, name="b")
        assert len(table) == 2
        assert sorted(r.name for r in table) == ["a", "b"]


class TestFineRegionTable:
    def test_default_is_hwcc(self):
        table = FineRegionTable(0xFE000000)
        assert not table.is_swcc(12345)

    def test_set_clear_roundtrip(self):
        table = FineRegionTable(0xFE000000)
        assert table.set_swcc(7)
        assert table.is_swcc(7)
        assert not table.set_swcc(7)  # already set
        assert table.clear_swcc(7)
        assert not table.is_swcc(7)
        assert not table.clear_swcc(7)

    def test_counters(self):
        table = FineRegionTable(0xFE000000)
        table.set_swcc(1)
        table.set_swcc(2)
        table.clear_swcc(1)
        assert table.bit_sets == 2
        assert table.bit_clears == 1

    def test_default_range_swcc(self):
        table = FineRegionTable(0xFE000000)
        table.add_default_swcc_range(0x40000000, 0x1000)
        assert table.is_swcc(0x40000000 >> 5)
        assert table.is_swcc((0x40000FFF) >> 5)
        assert not table.is_swcc((0x40001000) >> 5)
        assert table.override_count == 0

    def test_override_inside_default_range(self):
        table = FineRegionTable(0xFE000000)
        table.add_default_swcc_range(0x40000000, 0x1000)
        line = 0x40000000 >> 5
        assert table.clear_swcc(line)
        assert not table.is_swcc(line)
        assert table.override_count == 1
        assert table.set_swcc(line)       # back to the default
        assert table.override_count == 0  # override removed, not stacked

    def test_default_range_validation(self):
        table = FineRegionTable(0xFE000000)
        with pytest.raises(RegionError):
            table.add_default_swcc_range(0, 0)

    def test_table_word_addr_uses_tbloff(self):
        table = FineRegionTable(0xFE000000)
        line = 0x40000040 >> 5
        assert table.table_word_addr(line) == table_entry_addr(
            0xFE000000, line << 5)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 500), st.booleans()),
                    min_size=1, max_size=200))
    def test_matches_reference_bitmap(self, ops):
        """Sparse overrides+defaults behave exactly like a flat bitmap."""
        table = FineRegionTable(0xFE000000)
        table.add_default_swcc_range(100 * 32, 100 * 32)  # lines 100..199
        reference = {line: 100 <= line < 200 for line in range(501)}
        for line, make_swcc in ops:
            if make_swcc:
                table.set_swcc(line)
            else:
                table.clear_swcc(line)
            reference[line] = make_swcc
        for line, expect in reference.items():
            assert table.is_swcc(line) == expect
