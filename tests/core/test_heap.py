"""Heap allocators (coherent and incoherent, Section 3.5)."""

import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.heap import (FreeListAllocator, make_coherent_heap,
                             make_incoherent_heap)
from repro.errors import AllocationError


class TestBasicAllocation:
    def test_alloc_returns_aligned(self):
        heap = FreeListAllocator(0x1000, 0x1000, min_align=32)
        addr = heap.alloc(10)
        assert addr == 0x1000
        assert addr % 32 == 0

    def test_sequential_allocations_disjoint(self):
        heap = FreeListAllocator(0, 4096, min_align=8)
        a = heap.alloc(100)
        b = heap.alloc(100)
        assert b >= a + 100

    def test_free_and_reuse(self):
        heap = FreeListAllocator(0, 256, min_align=8)
        a = heap.alloc(256)
        with pytest.raises(AllocationError):
            heap.alloc(8)
        heap.free(a)
        assert heap.alloc(256) == a

    def test_double_free_rejected(self):
        heap = FreeListAllocator(0, 256)
        a = heap.alloc(16)
        heap.free(a)
        with pytest.raises(AllocationError):
            heap.free(a)

    def test_invalid_free_rejected(self):
        heap = FreeListAllocator(0, 256)
        with pytest.raises(AllocationError):
            heap.free(0x40)

    def test_zero_or_negative_size_rejected(self):
        heap = FreeListAllocator(0, 256)
        with pytest.raises(AllocationError):
            heap.alloc(0)
        with pytest.raises(AllocationError):
            heap.alloc(-4)

    def test_oom_message(self):
        heap = FreeListAllocator(0, 64, name="tiny")
        heap.alloc(64)
        with pytest.raises(AllocationError, match="tiny"):
            heap.alloc(1)

    def test_coalescing_rebuilds_big_chunks(self):
        heap = FreeListAllocator(0, 512, min_align=8)
        blocks = [heap.alloc(64) for _ in range(8)]
        for addr in blocks:  # free in forward order -> right-coalesce
            heap.free(addr)
        assert heap.alloc(512) == 0

    def test_coalescing_reverse_order(self):
        heap = FreeListAllocator(0, 512, min_align=8)
        blocks = [heap.alloc(64) for _ in range(8)]
        for addr in reversed(blocks):
            heap.free(addr)
        heap.check_invariants()
        assert heap.alloc(512) == 0

    def test_size_of_and_owns(self):
        heap = FreeListAllocator(0x100, 256, min_align=8)
        addr = heap.alloc(20)
        assert heap.size_of(addr) == 24  # rounded to alignment
        assert heap.owns(addr)
        assert not heap.owns(0x500)
        with pytest.raises(AllocationError):
            heap.size_of(0x105)

    def test_accounting(self):
        heap = FreeListAllocator(0, 256, min_align=8)
        assert heap.free_bytes == 256
        heap.alloc(64)
        assert heap.allocated_bytes == 64
        assert heap.free_bytes == 192
        assert heap.live_allocations == 1

    def test_config_validation(self):
        with pytest.raises(AllocationError):
            FreeListAllocator(0, 0)
        with pytest.raises(AllocationError):
            FreeListAllocator(0, 64, min_align=3)
        with pytest.raises(AllocationError):
            FreeListAllocator(4, 64, min_align=8)


class TestTable2Heaps:
    def test_coherent_heap_libc_like(self):
        heap = make_coherent_heap(0x20000000, 1 << 20)
        addr = heap.alloc(1)
        assert heap.size_of(addr) == 16  # libc-style minimum
        assert addr % 8 == 0

    def test_incoherent_heap_64_byte_minimum(self):
        """Section 3.5: minimum allocation is two cache lines so the
        allocator metadata stays on coherent lines."""
        heap = make_incoherent_heap(0x40000000, 1 << 20)
        addr = heap.alloc(1)
        assert heap.size_of(addr) == 64
        assert addr % 64 == 0
        other = heap.alloc(65)
        assert heap.size_of(other) == 128


class HeapMachine(RuleBasedStateMachine):
    """Stateful fuzz: byte conservation, disjointness, coalescing."""

    def __init__(self):
        super().__init__()
        self.heap = FreeListAllocator(0, 1 << 16, min_align=16)
        self.live = {}

    @rule(size=st.integers(min_value=1, max_value=2048))
    def alloc(self, size):
        try:
            addr = self.heap.alloc(size)
        except AllocationError:
            return
        rounded = self.heap.size_of(addr)
        for other, osize in self.live.items():
            assert addr + rounded <= other or other + osize <= addr
        self.live[addr] = rounded

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free(self, data):
        addr = data.draw(st.sampled_from(sorted(self.live)))
        self.heap.free(addr)
        del self.live[addr]

    @invariant()
    def invariants_hold(self):
        self.heap.check_invariants()
        assert self.heap.live_allocations == len(self.live)


TestHeapStateMachine = HeapMachine.TestCase
TestHeapStateMachine.settings = settings(
    max_examples=25, stateful_step_count=50, deadline=None)
