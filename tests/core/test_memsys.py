"""The L3/directory front-end: domain resolution, MSI, writebacks, atomics."""

import pytest

from repro import Policy
from repro.coherence.directory import DIR_M, DIR_S
from repro.errors import ProtocolError
from repro.types import MessageType, SegmentClass

from tests.conftest import make_machine

# Convenient addresses (per the default AddressLayout)
COHERENT_HEAP = 0x2000_0000
INCOHERENT_HEAP = 0x4000_0000
CODE = 0x0001_0000
STACK = 0x8000_0000


def line_of(addr):
    return addr >> 5


class TestDomainResolutionOrder:
    """Section 3.4: directory, then coarse table, then fine table."""

    def test_pure_swcc_everything_incoherent(self, swcc_machine):
        ms = swcc_machine.memsys
        for addr in (COHERENT_HEAP, INCOHERENT_HEAP, CODE, STACK):
            reply = ms.read_line(0, line_of(addr), 0.0)
            assert reply.incoherent

    def test_pure_hwcc_everything_coherent(self, hwcc_machine):
        ms = hwcc_machine.memsys
        for addr in (COHERENT_HEAP, INCOHERENT_HEAP, CODE, STACK):
            reply = ms.read_line(0, line_of(addr), 0.0)
            assert not reply.incoherent
            assert ms.directory_of(line_of(addr)).get(line_of(addr)) is not None

    def test_cohesion_coarse_regions_swcc(self, cohesion_machine):
        ms = cohesion_machine.memsys
        for addr in (CODE, STACK):
            reply = ms.read_line(0, line_of(addr), 0.0)
            assert reply.incoherent
            assert ms.directory_of(line_of(addr)).get(line_of(addr)) is None

    def test_cohesion_coherent_heap_hwcc(self, cohesion_machine):
        ms = cohesion_machine.memsys
        reply = ms.read_line(0, line_of(COHERENT_HEAP), 0.0)
        assert not reply.incoherent

    def test_cohesion_incoherent_heap_default_swcc(self, cohesion_machine):
        """Boot marks the incoherent heap SWcc (initial state, §3.6)."""
        ms = cohesion_machine.memsys
        reply = ms.read_line(0, line_of(INCOHERENT_HEAP), 0.0)
        assert reply.incoherent

    def test_cohesion_fine_table_lookup_charged(self, cohesion_machine):
        ms = cohesion_machine.memsys
        before = ms.fine_lookups
        ms.read_line(0, line_of(INCOHERENT_HEAP), 0.0)
        assert ms.fine_lookups == before + 1
        # Directory hit path must NOT consult the fine table.
        ms.read_line(0, line_of(COHERENT_HEAP), 0.0)
        before = ms.fine_lookups
        ms.read_line(1, line_of(COHERENT_HEAP), 0.0)
        assert ms.fine_lookups == before

    def test_coarse_hit_skips_fine_table(self, cohesion_machine):
        ms = cohesion_machine.memsys
        before = ms.fine_lookups
        ms.read_line(0, line_of(CODE), 0.0)
        assert ms.fine_lookups == before


class TestMsiReads:
    def test_read_allocates_shared_entry(self, hwcc_machine):
        ms = hwcc_machine.memsys
        line = line_of(COHERENT_HEAP)
        ms.read_line(1, line, 0.0)
        entry = ms.directory_of(line).get(line)
        assert entry.state == DIR_S
        assert entry.sharer_ids() == [1]

    def test_multiple_readers_accumulate(self, hwcc_machine):
        ms = hwcc_machine.memsys
        line = line_of(COHERENT_HEAP)
        for cluster in range(2):
            ms.read_line(cluster, line, 0.0)
        entry = ms.directory_of(line).get(line)
        assert entry.sharer_ids() == [0, 1]

    def test_read_of_modified_line_downgrades_owner(self, hwcc_machine):
        machine = hwcc_machine
        ms = machine.memsys
        addr = COHERENT_HEAP
        line = line_of(addr)
        machine.clusters[0].store(0, addr, 77, 0.0)
        entry = ms.directory_of(line).get(line)
        assert entry.state == DIR_M and entry.owner() == 0
        reply = ms.read_line(1, line, 100.0)
        assert entry.state == DIR_S
        assert sorted(entry.sharer_ids()) == [0, 1]
        assert reply.data[0] == 77  # the dirty word travelled via the L3
        # owner keeps a clean copy
        owned = machine.clusters[0].l2.peek(line)
        assert owned is not None and not owned.dirty_mask

    def test_read_miss_from_owner_is_protocol_error(self, hwcc_machine):
        ms = hwcc_machine.memsys
        line = line_of(COHERENT_HEAP)
        hwcc_machine.clusters[0].store(0, COHERENT_HEAP, 1, 0.0)
        hwcc_machine.clusters[0].l2.remove(line)  # corrupt: silent eviction
        with pytest.raises(ProtocolError):
            ms.read_line(0, line, 50.0)

    def test_instruction_request_counted_separately(self, hwcc_machine):
        ms = hwcc_machine.memsys
        ms.read_line(0, line_of(CODE), 0.0, instruction=True)
        assert ms.counters.instruction_request == 1
        assert ms.counters.read_request == 0


class TestMsiWrites:
    def test_write_request_invalidates_readers(self, hwcc_machine):
        machine = hwcc_machine
        ms = machine.memsys
        addr = COHERENT_HEAP
        line = line_of(addr)
        machine.clusters[0].load(0, addr, 0.0)
        machine.clusters[1].load(0, addr, 0.0)
        before = ms.counters.probe_response
        machine.clusters[1].store(0, addr, 5, 10.0)  # upgrade from S
        assert ms.counters.probe_response == before + 1  # cluster 0 probed
        entry = ms.directory_of(line).get(line)
        assert entry.state == DIR_M and entry.owner() == 1
        assert machine.clusters[0].l2.peek(line) is None

    def test_write_miss_steals_from_modified_owner(self, hwcc_machine):
        machine = hwcc_machine
        addr = COHERENT_HEAP
        line = line_of(addr)
        machine.clusters[0].store(0, addr, 11, 0.0)
        machine.clusters[1].store(0, addr + 4, 22, 50.0)
        ms = machine.memsys
        entry = ms.directory_of(line).get(line)
        assert entry.owner() == 1
        assert machine.clusters[0].l2.peek(line) is None
        # cluster 0's dirty word was written back through the L3
        e1 = machine.clusters[1].l2.peek(line)
        assert e1.data[0] == 11 and e1.data[1] == 22

    def test_upgrade_requires_tracked_sharer(self, hwcc_machine):
        ms = hwcc_machine.memsys
        with pytest.raises(ProtocolError):
            ms.upgrade_request(0, line_of(COHERENT_HEAP), 0.0)


class TestWritebacksAndReleases:
    def test_dirty_eviction_deallocates_owner_entry(self, hwcc_machine):
        machine = hwcc_machine
        ms = machine.memsys
        addr = COHERENT_HEAP
        line = line_of(addr)
        machine.clusters[0].store(0, addr, 9, 0.0)
        entry = machine.clusters[0].l2.remove(line)
        ms.writeback(0, line, entry.dirty_mask, entry.data, 10.0,
                     MessageType.CACHE_EVICTION, incoherent=False)
        assert ms.directory_of(line).get(line) is None
        assert ms.counters.cache_eviction == 1

    def test_read_release_removes_sharer(self, hwcc_machine):
        machine = hwcc_machine
        ms = machine.memsys
        line = line_of(COHERENT_HEAP)
        ms.read_line(0, line, 0.0)
        ms.read_line(1, line, 0.0)
        ms.read_release(0, line, 10.0)
        assert ms.directory_of(line).get(line).sharer_ids() == [1]
        ms.read_release(1, line, 20.0)
        assert ms.directory_of(line).get(line) is None
        assert ms.counters.read_release == 2

    def test_incoherent_writeback_merges_at_l3(self, swcc_machine):
        ms = swcc_machine.memsys
        line = line_of(INCOHERENT_HEAP)
        ms.writeback(0, line, 0b0001, [111, 0, 0, 0, 0, 0, 0, 0], 0.0,
                     MessageType.SOFTWARE_FLUSH, incoherent=True)
        ms.writeback(1, line, 0b0010, [0, 222, 0, 0, 0, 0, 0, 0], 5.0,
                     MessageType.SOFTWARE_FLUSH, incoherent=True)
        reply = ms.read_line(0, line, 100.0)
        assert reply.data[0] == 111 and reply.data[1] == 222
        assert ms.counters.software_flush == 2

    def test_writeback_rejects_wrong_message_type(self, swcc_machine):
        with pytest.raises(ProtocolError):
            swcc_machine.memsys.writeback(
                0, 1, 0b1, None, 0.0, MessageType.READ_REQUEST, incoherent=True)


class TestDirectoryEvictionPath:
    def test_sparse_eviction_invalidates_sharers(self):
        machine = make_machine(Policy.hwcc_real(entries_per_bank=4, assoc=4))
        ms = machine.memsys
        base = line_of(COHERENT_HEAP)
        machine.clusters[0].load(0, COHERENT_HEAP, 0.0)
        # Fill the 4-entry directory bank of this line's home bank with
        # other lines until the first line's entry is evicted.
        bank = ms.map.bank_of_line(base)
        victim_count = 0
        line = base
        t = 10.0
        while ms.directory_of(base).get(base) is not None:
            line += 1
            if ms.map.bank_of_line(line) != bank:
                continue
            machine.clusters[1].load(0, line << 5, t)
            t += 10.0
            victim_count += 1
            assert victim_count < 64, "directory never evicted"
        # the original sharer's L2 copy was invalidated by the eviction
        assert machine.clusters[0].l2.peek(base) is None
        assert ms.counters.probe_response >= 1


class TestAtomics:
    def test_atomic_returns_old_value(self, hwcc_machine):
        ms = hwcc_machine.memsys
        addr = COHERENT_HEAP
        _t, old = ms.atomic(0, addr, lambda a, b: a + b, 5, 0.0)
        assert old == 0
        _t, old = ms.atomic(1, addr, lambda a, b: a + b, 3, 10.0)
        assert old == 5

    def test_atomic_counted_uncached(self, swcc_machine):
        ms = swcc_machine.memsys
        ms.atomic(0, COHERENT_HEAP, lambda a, b: a + b, 1, 0.0)
        assert ms.counters.uncached_atomic == 1

    def test_atomic_flushes_cached_copies(self, hwcc_machine):
        machine = hwcc_machine
        ms = machine.memsys
        addr = COHERENT_HEAP
        line = line_of(addr)
        machine.clusters[0].store(0, addr, 40, 0.0)
        _t, old = ms.atomic(1, addr, lambda a, b: a + b, 2, 50.0)
        assert old == 40
        assert machine.clusters[0].l2.peek(line) is None
        assert ms.directory_of(line).get(line) is None

    def test_atomic_wraps_32_bits(self, hwcc_machine):
        ms = hwcc_machine.memsys
        ms.atomic(0, COHERENT_HEAP, lambda a, b: a + b, 0xFFFFFFFF, 0.0)
        _t, old = ms.atomic(0, COHERENT_HEAP, lambda a, b: a + b, 1, 1.0)
        assert old == 0xFFFFFFFF
        _t, old = ms.atomic(0, COHERENT_HEAP, lambda a, b: a + b, 0, 2.0)
        assert old == 0


class TestSegmentClassification:
    def test_directory_entries_classified(self, hwcc_machine):
        ms = hwcc_machine.memsys
        cases = {
            CODE: SegmentClass.CODE,
            STACK: SegmentClass.STACK,
            COHERENT_HEAP: SegmentClass.HEAP_GLOBAL,
            INCOHERENT_HEAP: SegmentClass.HEAP_GLOBAL,
        }
        for addr, klass in cases.items():
            line = line_of(addr)
            ms.read_line(0, line, 0.0)
            assert ms.directory_of(line).get(line).klass is klass


class TestTimingSanity:
    def test_later_requests_finish_later(self, hwcc_machine):
        ms = hwcc_machine.memsys
        r1 = ms.read_line(0, line_of(COHERENT_HEAP), 0.0)
        r2 = ms.read_line(0, line_of(COHERENT_HEAP) + 1, r1.time)
        assert r2.time > r1.time > 0

    def test_l3_hit_faster_than_miss(self, hwcc_machine):
        ms = hwcc_machine.memsys
        line = line_of(COHERENT_HEAP)
        miss = ms.read_line(0, line, 0.0).time - 0.0
        ms.read_release(0, line, miss)
        t0 = 10_000.0
        hit = ms.read_line(1, line, t0).time - t0
        assert hit < miss

    def test_max_time_tracks(self, hwcc_machine):
        ms = hwcc_machine.memsys
        reply = ms.read_line(0, line_of(COHERENT_HEAP), 123.0)
        assert ms.max_time >= reply.time
