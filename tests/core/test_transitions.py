"""Coherence-domain transitions (Figure 7, Section 3.6)."""

import pytest

from repro import Policy
from repro.coherence.directory import DIR_M, DIR_S
from repro.errors import CoherenceRaceError, ProtocolError
from repro.types import Domain

from tests.conftest import make_machine

COHERENT_HEAP = 0x2000_0000
INCOHERENT_HEAP = 0x4000_0000


def line_of(addr):
    return addr >> 5


@pytest.fixture
def machine():
    return make_machine(Policy.cohesion())


def hwcc_line(machine):
    """A coherent-heap line (HWcc by default under Cohesion)."""
    return line_of(COHERENT_HEAP)


def swcc_line(machine):
    """An incoherent-heap line (SWcc by default under Cohesion)."""
    return line_of(INCOHERENT_HEAP)


class TestHwccToSwcc:
    """Figure 7a."""

    def test_case_1a_untracked_line(self, machine):
        """No directory entry: just set the table bit."""
        ms = machine.memsys
        line = hwcc_line(machine)
        before = ms.counters.probe_response
        ms.transitions.to_swcc(line, 0, 0.0)
        assert ms.fine.is_swcc(line)
        assert ms.counters.probe_response == before  # no probes needed
        # subsequent accesses resolve SWcc
        assert ms.read_line(0, line, 100.0).incoherent

    def test_case_2a_shared_line_invalidated(self, machine):
        ms = machine.memsys
        addr = COHERENT_HEAP
        line = hwcc_line(machine)
        machine.clusters[0].load(0, addr, 0.0)
        machine.clusters[1].load(0, addr, 0.0)
        before = ms.counters.probe_response
        ms.transitions.to_swcc(line, 0, 50.0)
        assert ms.counters.probe_response == before + 2
        assert ms.directory_of(line).get(line) is None
        assert machine.clusters[0].l2.peek(line) is None
        assert machine.clusters[1].l2.peek(line) is None
        assert ms.fine.is_swcc(line)

    def test_case_3a_modified_line_written_back(self, machine):
        ms = machine.memsys
        addr = COHERENT_HEAP
        line = hwcc_line(machine)
        machine.clusters[1].store(0, addr, 1234, 0.0)
        ms.transitions.to_swcc(line, 0, 50.0)
        # line is in no L2 and the L3/memory holds the current value
        assert machine.clusters[1].l2.peek(line) is None
        assert ms.read_line(0, line, 100.0).data[0] == 1234

    def test_table_update_is_an_uncached_atomic(self, machine):
        ms = machine.memsys
        before = ms.counters.uncached_atomic
        ms.transitions.to_swcc(hwcc_line(machine), 0, 0.0)
        assert ms.counters.uncached_atomic == before + 1


class TestSwccToHwcc:
    """Figure 7b."""

    def test_case_1b_held_nowhere(self, machine):
        ms = machine.memsys
        line = swcc_line(machine)
        before = ms.counters.probe_response
        ms.transitions.to_hwcc(line, 0, 0.0)
        # broadcast clean request: every cluster acks/nacks
        assert ms.counters.probe_response == before + machine.config.n_clusters
        assert not ms.fine.is_swcc(line)
        assert ms.directory_of(line).get(line) is None  # stays I
        # subsequent accesses are hardware-coherent
        assert not ms.read_line(0, line, 100.0).incoherent

    def test_case_2b_clean_holders_become_sharers(self, machine):
        ms = machine.memsys
        addr = INCOHERENT_HEAP
        line = swcc_line(machine)
        machine.clusters[0].load(0, addr, 0.0)
        machine.clusters[1].load(0, addr, 0.0)
        ms.transitions.to_hwcc(line, 0, 50.0)
        entry = ms.directory_of(line).get(line)
        assert entry is not None and entry.state == DIR_S
        assert sorted(entry.sharer_ids()) == [0, 1]
        for cluster in machine.clusters:
            held = cluster.l2.peek(line)
            assert held is not None and not held.incoherent  # retained

    def test_single_dirty_upgraded_in_place_no_writeback(self, machine):
        ms = machine.memsys
        addr = INCOHERENT_HEAP
        line = swcc_line(machine)
        machine.clusters[1].store(0, addr, 55, 0.0)
        flushes_before = ms.counters.software_flush
        evictions_before = ms.counters.cache_eviction
        ms.transitions.to_hwcc(line, 0, 50.0)
        entry = ms.directory_of(line).get(line)
        assert entry.state == DIR_M and entry.owner() == 1
        held = machine.clusters[1].l2.peek(line)
        assert held is not None and not held.incoherent
        assert held.dirty_mask  # still dirty: no writeback occurred
        assert ms.counters.software_flush == flushes_before
        assert ms.counters.cache_eviction == evictions_before

    def test_dirty_with_readers_all_removed(self, machine):
        ms = machine.memsys
        addr = INCOHERENT_HEAP
        line = swcc_line(machine)
        machine.clusters[0].load(0, addr, 0.0)       # clean reader
        machine.clusters[1].store(0, addr, 99, 0.0)  # dirty writer
        ms.transitions.to_hwcc(line, 0, 50.0)
        assert machine.clusters[0].l2.peek(line) is None
        assert machine.clusters[1].l2.peek(line) is None
        assert ms.directory_of(line).get(line) is None
        # the L3 holds the most recent copy
        assert ms.read_line(0, line, 200.0).data[0] == 99

    def test_multiple_disjoint_writers_merged(self, machine):
        """Per-word dirty bits let the L3 merge disjoint write sets."""
        ms = machine.memsys
        addr = INCOHERENT_HEAP
        line = swcc_line(machine)
        machine.clusters[0].store(0, addr, 111, 0.0)       # word 0
        machine.clusters[1].store(0, addr + 4, 222, 0.0)   # word 1
        ms.transitions.to_hwcc(line, 0, 50.0)
        reply = ms.read_line(0, line, 200.0)
        assert reply.data[0] == 111 and reply.data[1] == 222

    def test_case_5b_overlapping_writers_raise(self, machine):
        ms = machine.memsys
        addr = INCOHERENT_HEAP
        line = swcc_line(machine)
        machine.clusters[0].store(0, addr, 1, 0.0)
        machine.clusters[1].store(0, addr, 2, 0.0)  # same word: a race
        with pytest.raises(CoherenceRaceError) as info:
            ms.transitions.to_hwcc(line, 0, 50.0)
        assert info.value.line_addr == line
        assert sorted(info.value.clusters) == [0, 1]
        assert info.value.overlap_mask == 0b1
        assert ms.swcc_races == 1

    def test_case_5b_recovery_discards_dirty_values(self):
        """Without the exception, all dirty copies are thrown away."""
        machine = make_machine(
            Policy(kind=Policy.cohesion().kind, raise_on_swcc_race=False))
        ms = machine.memsys
        addr = INCOHERENT_HEAP
        line = line_of(addr)
        ms.backing.write_word_addr(addr, 7777)  # prior globally visible value
        machine.clusters[0].store(0, addr, 1, 100.0)
        machine.clusters[1].store(0, addr, 2, 100.0)
        ms.transitions.to_hwcc(line, 0, 500.0)
        assert ms.swcc_races == 1
        assert machine.clusters[0].l2.peek(line) is None
        assert machine.clusters[1].l2.peek(line) is None
        value = ms.read_line(0, line, 1000.0).data[0]
        assert value == 7777  # racing values discarded

    def test_case_5b_raise_leaves_consistent_post_state(self, machine):
        """The exception propagates *after* the discard recovery ran.

        Post-state must match recovery mode exactly: the line is cached
        in no L2, the directory stays I, the table bit is cleared (the
        line is HWcc now), and memory holds the pre-race value.
        """
        ms = machine.memsys
        addr = INCOHERENT_HEAP
        line = swcc_line(machine)
        ms.backing.write_word_addr(addr, 7777)
        machine.clusters[0].store(0, addr, 1, 0.0)
        machine.clusters[1].store(0, addr, 2, 0.0)
        with pytest.raises(CoherenceRaceError):
            ms.transitions.to_hwcc(line, 0, 50.0)
        for cluster in machine.clusters:
            assert cluster.l2.peek(line) is None
        assert ms.directory_of(line).get(line) is None  # directory stays I
        assert not ms.fine.is_swcc(line)                # transition completed
        reply = ms.read_line(0, line, 1000.0)
        assert not reply.incoherent
        assert reply.data[0] == 7777  # racing values discarded

    def test_case_5b_recovery_post_state_directory_invalid(self):
        """Recovery mode: line in no L2, directory I, bit cleared."""
        machine = make_machine(
            Policy(kind=Policy.cohesion().kind, raise_on_swcc_race=False))
        ms = machine.memsys
        addr = INCOHERENT_HEAP
        line = line_of(addr)
        machine.clusters[0].store(0, addr, 1, 100.0)
        machine.clusters[1].store(0, addr, 2, 100.0)
        machine.clusters[1].store(0, addr + 4, 3, 100.0)  # word 1, no overlap
        ms.transitions.to_hwcc(line, 0, 500.0)
        for cluster in machine.clusters:
            assert cluster.l2.peek(line) is None
        assert ms.directory_of(line).get(line) is None
        assert not ms.fine.is_swcc(line)
        # Every dirty copy was discarded, including the non-overlapping
        # word of the racing writer pair.
        assert ms.read_line(0, line, 1000.0).data[1] == 0


class TestTransitionLineAndRegions:
    def test_transition_line_skips_same_domain(self, machine):
        ms = machine.memsys
        line = swcc_line(machine)
        before = ms.counters.uncached_atomic
        ms.transitions.transition_line(line, Domain.SWCC, 0, 0.0)
        assert ms.counters.uncached_atomic == before  # already SWcc

    def test_transition_line_round_trip(self, machine):
        ms = machine.memsys
        line = swcc_line(machine)
        ms.transitions.transition_line(line, Domain.HWCC, 0, 0.0)
        assert not ms.fine.is_swcc(line)
        ms.transitions.transition_line(line, Domain.SWCC, 0, 100.0)
        assert ms.fine.is_swcc(line)

    def test_convert_region_covers_every_line(self, machine):
        ms = machine.memsys
        base = INCOHERENT_HEAP + 0x1000
        size = 24 * 32  # 24 lines
        ms.transitions.convert_region(base, size, Domain.HWCC, 0, 0.0)
        for line in range(base >> 5, (base + size) >> 5):
            assert not ms.fine.is_swcc(line)

    def test_convert_region_batches_table_atomics(self, machine):
        """One atom.or covers the 32 line bits of one table word."""
        ms = machine.memsys
        base = INCOHERENT_HEAP + 0x8000
        before = ms.counters.uncached_atomic
        ms.transitions.convert_region(base, 32 * 32, Domain.HWCC, 0, 0.0)
        atomics = ms.counters.uncached_atomic - before
        assert atomics == 1  # 32 aligned lines share one table word

    def test_counts(self, machine):
        ms = machine.memsys
        line = swcc_line(machine)
        ms.transitions.to_hwcc(line, 0, 0.0)
        ms.transitions.to_swcc(line, 0, 100.0)
        assert ms.transitions.to_hwcc_count == 1
        assert ms.transitions.to_swcc_count == 1

    def test_transitions_require_cohesion(self):
        machine = make_machine(Policy.hwcc_ideal())
        with pytest.raises(ProtocolError):
            machine.memsys.transitions.to_swcc(1, 0, 0.0)

    def test_transition_serialises_with_accesses(self, machine):
        """A transition acknowledges only after the line is consistent."""
        ms = machine.memsys
        addr = COHERENT_HEAP
        line = line_of(addr)
        machine.clusters[1].store(0, addr, 42, 0.0)
        done = ms.transitions.to_swcc(line, 0, 10.0)
        reply = ms.read_line(0, line, done)
        assert reply.incoherent
        assert reply.data[0] == 42
