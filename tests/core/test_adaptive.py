"""Adaptive coherence-domain remapping (future-work extension)."""

import pytest

from repro import Policy
from repro.core.adaptive import (AdaptiveRemapper, Region, RegionProfiler)
from repro.errors import RegionError
from repro.types import Domain

from tests.conftest import make_machine

INC = 0x4000_0000
HEAP = 0x2000_0000


@pytest.fixture
def machine():
    return make_machine(Policy.cohesion())


class TestRegionProfiler:
    def test_register_and_lookup(self):
        profiler = RegionProfiler()
        profiler.register("a", 0x1000, 0x1000, Domain.SWCC)
        profiler.register("b", 0x3000, 0x1000, Domain.HWCC)
        assert profiler.region_of_line(0x1000 >> 5).name == "a"
        assert profiler.region_of_line(0x1FE0 >> 5).name == "a"
        assert profiler.region_of_line(0x2000 >> 5) is None
        assert profiler.region_of_line(0x3000 >> 5).name == "b"
        assert profiler.region_of_line(0) is None

    def test_overlap_rejected(self):
        profiler = RegionProfiler()
        profiler.register("a", 0x1000, 0x1000, Domain.SWCC)
        with pytest.raises(RegionError):
            profiler.register("b", 0x1800, 0x1000, Domain.SWCC)
        with pytest.raises(RegionError):
            profiler.register("c", 0x800, 0x1000, Domain.SWCC)

    def test_note_attribution(self):
        profiler = RegionProfiler()
        region = profiler.register("a", 0x1000, 0x1000, Domain.HWCC)
        line = 0x1000 >> 5
        profiler.note(line, profiler.READ, 0)
        profiler.note(line, profiler.READ, 1)
        profiler.note(line, profiler.WRITE, 1)
        profiler.note(line, profiler.FLUSH, 0)
        profiler.note(line, profiler.ATOMIC, 2)
        profile = region.profile
        assert profile.reads == 2
        assert profile.writes == 1 and profile.flushes == 1
        assert profile.atomics == 1
        assert profile.read_sharers == {0, 1}
        assert profile.write_sharers == {0, 1, 2}
        assert not profile.read_only
        assert profile.write_shared

    def test_unregistered_traffic_ignored(self):
        profiler = RegionProfiler()
        profiler.register("a", 0x1000, 0x1000, Domain.HWCC)
        profiler.note(0x9000 >> 5, profiler.READ, 0)  # no crash, no count
        assert profiler.regions()[0].profile.total == 0

    def test_profile_reset(self):
        profile = Region("x", 0, 32, Domain.SWCC).profile
        profile.reads = 5
        profile.read_sharers.add(1)
        profile.reset()
        assert profile.total == 0 and not profile.read_sharers


class TestMemorySystemHook:
    def test_traffic_is_attributed(self, machine):
        remapper = AdaptiveRemapper(machine)
        region = remapper.register("buf", HEAP, 4096, Domain.HWCC)
        machine.clusters[0].load(0, HEAP, 0.0)
        machine.clusters[1].load(0, HEAP + 64, 0.0)
        machine.clusters[0].store(0, HEAP + 128, 1, 10.0)
        machine.clusters[0].atomic(0, HEAP + 256, lambda a, b: a + b, 1, 20.0)
        assert region.profile.reads == 2
        assert region.profile.writes == 1
        assert region.profile.atomics == 1

    def test_requires_cohesion(self):
        machine = make_machine(Policy.hwcc_ideal())
        with pytest.raises(RegionError):
            AdaptiveRemapper(machine)


class TestDecisions:
    def _drive_read_sharing(self, machine, base, n_lines=48):
        t = 0.0
        for cluster in machine.clusters:
            for i in range(n_lines):
                t, _ = cluster.load(0, base + 32 * i, t)
        return t

    def test_read_shared_hwcc_region_moves_to_swcc(self, machine):
        remapper = AdaptiveRemapper(machine)
        remapper.register("input", HEAP, 48 * 32, Domain.HWCC)
        self._drive_read_sharing(machine, HEAP)
        decisions = remapper.on_barrier()
        assert len(decisions) == 1
        assert decisions[0].to_domain is Domain.SWCC
        assert machine.memsys.fine.is_swcc(HEAP >> 5)
        assert remapper.summary()["input"] is Domain.SWCC

    def test_write_shared_swcc_region_moves_to_hwcc(self, machine):
        remapper = AdaptiveRemapper(machine)
        remapper.register("shared", INC, 64 * 32, Domain.SWCC)
        t = 0.0
        # both clusters write-miss (disjoint lines) into the SWcc region
        for cid, cluster in enumerate(machine.clusters):
            for i in range(24):
                t = cluster.store(0, INC + 32 * (2 * i + cid), 1, t)
        decisions = remapper.on_barrier()
        assert [d.to_domain for d in decisions] == [Domain.HWCC]
        assert not machine.memsys.fine.is_swcc(INC >> 5)

    def test_quiet_region_untouched(self, machine):
        remapper = AdaptiveRemapper(machine, min_traffic=32)
        remapper.register("quiet", HEAP, 4096, Domain.HWCC)
        machine.clusters[0].load(0, HEAP, 0.0)
        assert remapper.on_barrier() == []

    def test_private_region_untouched(self, machine):
        remapper = AdaptiveRemapper(machine)
        remapper.register("private", HEAP, 64 * 32, Domain.HWCC)
        cluster = machine.clusters[0]  # a single sharer only
        t = 0.0
        for i in range(64):
            t, _ = cluster.load(0, HEAP + 32 * i, t)
        assert remapper.on_barrier() == []

    def test_hysteresis_blocks_immediate_flip_back(self, machine):
        remapper = AdaptiveRemapper(machine, hysteresis_phases=3)
        remapper.register("input", HEAP, 48 * 32, Domain.HWCC)
        self._drive_read_sharing(machine, HEAP)
        assert remapper.on_barrier()  # flips to SWcc
        # next phase: two clusters write -> would flip back, but hysteresis
        t = 1e6
        for cid, cluster in enumerate(machine.clusters):
            for i in range(24):
                t = cluster.store(0, HEAP + 32 * (2 * i + cid), 1, t)
        assert remapper.on_barrier() == []

    def test_profiles_reset_each_barrier(self, machine):
        remapper = AdaptiveRemapper(machine)
        region = remapper.register("input", HEAP, 48 * 32, Domain.HWCC)
        self._drive_read_sharing(machine, HEAP)
        remapper.on_barrier()
        assert region.profile.total == 0

    def test_decision_log_accumulates(self, machine):
        remapper = AdaptiveRemapper(machine, hysteresis_phases=0)
        remapper.register("input", HEAP, 48 * 32, Domain.HWCC)
        self._drive_read_sharing(machine, HEAP)
        remapper.on_barrier()
        # now drive write sharing in the (now SWcc) region
        t = 1e6
        for cid, cluster in enumerate(machine.clusters):
            for i in range(24):
                t = cluster.store(0, HEAP + 32 * (2 * i + cid), 1, t)
        remapper.on_barrier()
        domains = [d.to_domain for d in remapper.decisions]
        assert domains == [Domain.SWCC, Domain.HWCC]
        assert remapper.decisions[0].phase_index == 0
        assert remapper.decisions[1].phase_index == 1


class TestEndToEndWithExecutor:
    def test_remapper_as_phase_hook(self, machine):
        """The remapper plugs into Phase.after and changes later phases."""
        from repro.runtime.program import Phase, Program, Task
        from repro.types import OP_LOAD

        remapper = AdaptiveRemapper(machine)
        # a dedicated allocation (the low heap holds the runtime's
        # queue/barrier cells, whose atomics would look like writes)
        base = machine.api.malloc(64 * 32)
        remapper.register("table", base, 64 * 32, Domain.HWCC)
        ops = [(OP_LOAD, base + 32 * i) for i in range(64)]
        # more tasks than cores so both clusters participate
        phase1 = Phase("read1", [Task(ops=list(ops), stack_words=0)
                                 for _ in range(40)],
                       code_lines=0, after=remapper.on_barrier)
        phase2 = Phase("read2", [Task(ops=list(ops), stack_words=0)
                                 for _ in range(40)],
                       code_lines=0)
        machine.run(Program("adaptive", [phase1, phase2]))
        assert remapper.summary()["table"] is Domain.SWCC
        # phase 2 ran with the region software-managed: no new entries
        line = base >> 5
        assert machine.memsys.directory_of(line).get(line) is None
