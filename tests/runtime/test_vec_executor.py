"""Bit-identity suite for the vectorized executor backend.

The ``vec`` backend may reorganise *how* work is dispatched (batched
same-line load runs, batched store runs, aggregated LRU updates) but
never *what* happens: every counter, every cycle, every observable
event must match the reference interpreter exactly. These tests pin
that contract from four angles:

* full-stats equality over the eight paper kernels under each policy
  family (with and without data tracking);
* observable event-stream equality (the batched paths must emit the
  same events at the same simulated times as the per-op interpreter);
* generative equality over random well-synchronised BSP programs
  (reusing the tier-1 generator), including value delivery;
* cache-key neutrality -- the result cache deliberately keys cells
  without the backend, which is only sound because of the above.

The suite skips itself (except the packaging test) when numpy is not
installed: the interpreter is the zero-dependency reference and must
keep working alone.
"""

import os

import pytest

from repro import Machine, MachineConfig, Policy
from repro.errors import SimulationError
from repro.runtime.backends import resolve_backend
from repro.runtime.program import Phase, Program, Task
from repro.types import OP_COMPUTE, OP_LOAD, OP_STORE
from repro.workloads import ALL_WORKLOADS, get_workload

from tests.conftest import make_machine, policy_by_label

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised on minimal installs
    HAVE_NUMPY = False

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="vec backend requires numpy")

#: Policy families whose protocol paths differ materially; the ideal
#: variants share their code paths with these.
POLICY_LABELS = ["swcc", "hwcc_real", "cohesion"]


def _run_kernel(workload: str, policy_label: str, backend: str,
                track_data: bool = True, scale: float = 0.5):
    machine = make_machine(policy_by_label(policy_label),
                           track_data=track_data)
    program = get_workload(workload, scale=scale, seed=1234).build(machine)
    stats = machine.run(program, backend=backend)
    return machine, stats


@needs_numpy
class TestKernelEquality:
    """stats.as_dict() equality: every counter the repo reports."""

    @pytest.mark.parametrize("policy_label", POLICY_LABELS)
    @pytest.mark.parametrize("workload", ALL_WORKLOADS)
    def test_all_kernels_all_policies(self, workload, policy_label):
        _, ref = _run_kernel(workload, policy_label, "interp")
        _, vec = _run_kernel(workload, policy_label, "vec")
        assert vec.as_dict() == ref.as_dict()
        assert vec.load_mismatches == ref.load_mismatches

    @pytest.mark.parametrize("workload", ["kmeans", "gjk"])
    def test_untracked_data(self, workload):
        """track_data=False flips the checked-load/value plumbing off;
        the batched paths must stay identical there too."""
        _, ref = _run_kernel(workload, "cohesion", "interp",
                             track_data=False)
        _, vec = _run_kernel(workload, "cohesion", "vec",
                             track_data=False)
        assert vec.as_dict() == ref.as_dict()

    def test_state_identical_after_run(self):
        """Every protocol-visible bit of machine state matches: cache
        contents word for word, directory state, fine-table bits."""
        m_ref, _ = _run_kernel("kmeans", "cohesion", "interp")
        m_vec, _ = _run_kernel("kmeans", "cohesion", "vec")
        assert m_vec.snapshot() == m_ref.snapshot()


def _event_stream(machine, program, backend):
    """Run under a wildcard obs subscription; return the full stream."""
    events = []
    machine.memsys.obs.subscribe(
        lambda e: events.append((e.time, e.kind, e.cluster, e.core,
                                 e.line, e.addr, e.value, e.dur,
                                 e.detail)))
    machine.run(program, backend=backend)
    return events


@needs_numpy
class TestObsStreamEquality:
    """The batched fast paths announce every event the interpreter
    would -- same kind, same issue time, same payload, same order."""

    @pytest.mark.parametrize("policy_label", POLICY_LABELS)
    def test_kmeans_stream(self, policy_label):
        streams = {}
        for backend in ("interp", "vec"):
            machine = make_machine(policy_by_label(policy_label))
            program = get_workload("kmeans", scale=0.4,
                                   seed=1234).build(machine)
            streams[backend] = _event_stream(machine, program, backend)
        assert streams["vec"] == streams["interp"]

    def test_store_heavy_stream(self):
        """Same-line store runs are the store batch's fast path; with
        the bus active each op must still announce itself."""
        base = 0x4000_0000
        ops = []
        for word in range(8):
            ops.extend((OP_STORE, base + 4 * word, 7_000 + word)
                       for _ in range(3))
        task = Task(ops=ops, flush_lines=[base >> 5],
                    input_lines=[base >> 5], stack_words=2)
        program = Program("stores", [Phase("p0", [task], code_addr=0x10000,
                                           code_lines=1)])
        streams = {}
        for backend in ("interp", "vec"):
            machine = make_machine(Policy.swcc())
            streams[backend] = _event_stream(machine, program, backend)
        assert streams["vec"] == streams["interp"]


@needs_numpy
class TestEdgeCases:
    def test_huge_store_values_fall_back_exactly(self):
        """Values outside float64's exact-integer range (|v| >= 2**53)
        cannot ride the value column; the run must take the per-op
        path and still deliver exact integers."""
        base = 0x4000_0000
        big = (1 << 53) + 1  # not representable in float64
        ops = [(OP_STORE, base, big), (OP_STORE, base + 4, big + 2),
               (OP_COMPUTE, 1), (OP_LOAD, base, big)]
        task = Task(ops=ops, flush_lines=[base >> 5],
                    input_lines=[base >> 5], stack_words=2)
        program = Program("big", [Phase("p0", [task], code_addr=0x10000,
                                        code_lines=1)])
        results = {}
        for backend in ("interp", "vec"):
            machine = make_machine(Policy.swcc())
            stats = machine.run(program, backend=backend)
            results[backend] = (stats.as_dict(), stats.load_mismatches,
                                machine.verify_expected({base: big,
                                                         base + 4: big + 2}))
        assert results["vec"] == results["interp"]
        assert results["vec"][1] == []  # the checked load saw the value
        assert results["vec"][2] == []

    def test_mid_run_interleaving(self):
        """Tiny slices force batch truncation at slice boundaries; the
        residue re-enters the batch on the next slice."""
        base = 0x4000_0000
        ops = [(OP_STORE, base + 4 * (i % 8), i) for i in range(24)]
        ops += [(OP_LOAD, base + 4 * (i % 8), None) for i in range(24)]
        ops = [(k, a, v) if v is not None else (k, a)
               for k, a, v in ops]
        task = Task(ops=ops, flush_lines=[base >> 5],
                    input_lines=[base >> 5], stack_words=2)
        program = Program("slices", [Phase("p0", [task], code_addr=0x10000,
                                           code_lines=1)])
        for ops_per_slice in (1, 3, 8):
            results = {}
            for backend in ("interp", "vec"):
                machine = make_machine(Policy.cohesion())
                stats = machine.run(program, ops_per_slice=ops_per_slice,
                                    backend=backend)
                results[backend] = stats.as_dict()
            assert results["vec"] == results["interp"], \
                f"ops_per_slice={ops_per_slice}"


@needs_numpy
class TestRandomProgramEquality:
    """Generative equality: the tier-1 BSP generator, both backends."""

    def test_random_programs(self):
        from hypothesis import given, settings, strategies as st

        from tests.test_random_bsp_programs import bsp_programs

        @settings(max_examples=15, deadline=None)
        @given(bsp_programs(),
               st.sampled_from(["swcc", "hwcc_ideal", "cohesion"]))
        def check(built, policy_label):
            program, expected = built
            results = {}
            for backend in ("interp", "vec"):
                machine = make_machine(policy_by_label(policy_label))
                stats = machine.run(program, backend=backend)
                results[backend] = (stats.as_dict(),
                                    stats.load_mismatches,
                                    machine.verify_expected(expected))
            assert results["vec"] == results["interp"]
            assert results["vec"][2] == []

        check()


class TestBackendPlumbing:
    def test_cache_key_ignores_backend(self):
        """The result cache shares entries across backends -- sound
        only while the equality tests above hold."""
        from repro.analysis.experiments import ExperimentConfig
        from repro.analysis.parallel import Cell
        from repro.cache.results import cell_key

        keys = []
        for backend in ("interp", "vec"):
            exp = ExperimentConfig(n_clusters=2, scale=0.5,
                                   backend=backend)
            keys.append(cell_key(Cell.make("kmeans", Policy.swcc(), exp)))
        assert keys[0] == keys[1]

    def test_missing_numpy_names_the_extra(self, monkeypatch):
        """Without numpy, selecting vec fails actionably and the
        interpreter stays available."""
        import repro.runtime.backends as backends

        monkeypatch.setattr(backends, "numpy_available", lambda: False)
        with pytest.raises(SimulationError, match=r"repro\[vec\]"):
            backends.resolve_backend("vec")
        assert backends.resolve_backend("interp") is not None

    def test_opcode_partition_disjoint(self):
        """S004's invariant, asserted directly: vectorized and
        fallback opcode sets partition the dispatch table."""
        if not HAVE_NUMPY:
            pytest.skip("vec backend requires numpy")
        from repro.runtime.vec import VEC_FALLBACK, VEC_OPCODES

        assert not (VEC_OPCODES & VEC_FALLBACK)


@needs_numpy
@pytest.mark.skipif(os.environ.get("REPRO_FULL") != "1",
                    reason="full-scale smoke only under REPRO_FULL=1")
class TestFullScaleSmoke:
    def test_full_machine_gjk(self):
        """One 128-cluster (1024-core) kernel end to end on the vec
        backend -- the configuration the backend exists to make
        practical."""
        cfg = MachineConfig(track_data=False).scaled(128)
        machine = Machine(cfg, Policy.cohesion(entries_per_bank=1024,
                                               assoc=64))
        program = get_workload("gjk", scale=1.0, seed=1234).build(machine)
        stats = machine.run(program, backend="vec")
        assert stats.as_dict()["cycles"] > 0
