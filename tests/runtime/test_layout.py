"""Address-space layout and segment classification."""

import pytest

from repro.errors import ConfigError
from repro.runtime.layout import FINE_TABLE_BYTES, AddressLayout
from repro.types import SegmentClass


class TestLayoutGeometry:
    def test_defaults_validate(self):
        layout = AddressLayout()
        assert layout.n_cores == 1024
        assert layout.stacks_size == 1024 * 4096

    def test_fine_table_is_16mb(self):
        assert FINE_TABLE_BYTES == 16 * 1024 * 1024
        # 1 bit per 32-byte line over 4 GB
        assert FINE_TABLE_BYTES * 8 == (1 << 32) // 32

    def test_segments_must_not_overlap(self):
        with pytest.raises(ConfigError):
            AddressLayout(globals_base=0x2000_0000)  # collides with heap

    def test_segments_must_be_line_aligned(self):
        with pytest.raises(ConfigError):
            AddressLayout(code_base=0x10001)

    def test_segments_must_fit_32_bits(self):
        with pytest.raises(ConfigError):
            AddressLayout(incoherent_heap_size=0xD000_0000)


class TestStacks:
    def test_stack_regions_disjoint_per_core(self):
        layout = AddressLayout(n_cores=16)
        regions = [layout.stack_region(core) for core in range(16)]
        for (b0, s0), (b1, _s1) in zip(regions, regions[1:]):
            assert b0 + s0 == b1

    def test_stack_addr_bounds(self):
        layout = AddressLayout(n_cores=4)
        base, size = layout.stack_region(2)
        assert layout.stack_addr(2, 0) == base
        assert layout.stack_addr(2, size - 4) == base + size - 4
        with pytest.raises(ConfigError):
            layout.stack_addr(2, size)
        with pytest.raises(ConfigError):
            layout.stack_region(4)


class TestClassification:
    def test_classify_segments(self):
        layout = AddressLayout(n_cores=8)
        assert layout.classify(layout.code_base) is SegmentClass.CODE
        assert layout.classify(layout.stack_base) is SegmentClass.STACK
        assert layout.classify(layout.coherent_heap_base) is SegmentClass.HEAP_GLOBAL
        assert layout.classify(layout.globals_base) is SegmentClass.HEAP_GLOBAL

    def test_classify_line(self):
        layout = AddressLayout(n_cores=8)
        assert layout.classify_line(layout.stack_base >> 5) is SegmentClass.STACK

    def test_stack_boundary(self):
        layout = AddressLayout(n_cores=8)
        end = layout.stack_base + layout.stacks_size
        assert layout.classify(end - 1) is SegmentClass.STACK
        assert layout.classify(end) is SegmentClass.HEAP_GLOBAL

    def test_in_fine_table(self):
        layout = AddressLayout()
        assert layout.in_fine_table(layout.fine_table_base)
        assert layout.in_fine_table(layout.fine_table_base + FINE_TABLE_BYTES - 1)
        assert not layout.in_fine_table(layout.fine_table_base - 1)
