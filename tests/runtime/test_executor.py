"""BSP executor: task queue, barriers, op dispatch, injected overheads."""

import pytest

from repro import Policy
from repro.runtime.program import Phase, Program, Task
from repro.types import OP_ATOMIC, OP_COMPUTE, OP_LOAD, OP_STORE

from tests.conftest import make_machine

HEAP = 0x2000_0000
INC = 0x4000_0000


def simple_program(n_tasks=4, ops_per_task=4, flush=(), inputs=()):
    tasks = [Task(ops=[(OP_LOAD, HEAP + 0x1000 * t + 4 * i)
                       for i in range(ops_per_task)],
                  flush_lines=list(flush), input_lines=list(inputs),
                  stack_words=2)
             for t in range(n_tasks)]
    return Program("test", [Phase("p0", tasks, code_addr=0x10000,
                                  code_lines=2)])


class TestBasicExecution:
    def test_all_tasks_execute(self, hwcc_machine):
        program = simple_program(n_tasks=7)
        stats = hwcc_machine.run(program)
        assert stats.tasks_executed == 7
        assert stats.barriers == 1
        assert stats.cycles > 0

    def test_clocks_synchronized_after_barrier(self, hwcc_machine):
        hwcc_machine.run(simple_program())
        clocks = set(hwcc_machine.core_clocks)
        assert len(clocks) == 1

    def test_more_tasks_than_cores(self, hwcc_machine):
        n = hwcc_machine.config.n_cores * 3
        stats = hwcc_machine.run(simple_program(n_tasks=n))
        assert stats.tasks_executed == n

    def test_fewer_tasks_than_cores(self, hwcc_machine):
        stats = hwcc_machine.run(simple_program(n_tasks=1))
        assert stats.tasks_executed == 1
        assert stats.barriers == 1

    def test_empty_phase_still_barriers(self, hwcc_machine):
        program = Program("empty", [Phase("p0", [])])
        stats = hwcc_machine.run(program)
        assert stats.barriers == 1
        assert stats.tasks_executed == 0

    def test_multi_phase_in_order(self, hwcc_machine):
        phases = [Phase(f"p{i}", simple_program(2).phases[0].tasks)
                  for i in range(3)]
        stats = hwcc_machine.run(Program("multi", phases))
        assert stats.barriers == 3
        assert stats.tasks_executed == 6


class TestInjectedTraffic:
    def test_dequeue_atomics_counted(self, hwcc_machine):
        stats = hwcc_machine.run(simple_program(n_tasks=5))
        # one dequeue atomic per task + one barrier atomic per core
        expected = 5 + hwcc_machine.config.n_cores
        assert stats.messages.uncached_atomic == expected

    def test_instruction_fetches_injected(self, hwcc_machine):
        stats = hwcc_machine.run(simple_program())
        assert stats.messages.instruction_request > 0

    def test_stack_traffic_touches_stack_segment(self, hwcc_machine):
        hwcc_machine.run(simple_program())
        layout = hwcc_machine.layout
        stack_lines = [entry.line for cluster in hwcc_machine.clusters
                       for entry in cluster.l2.lines()
                       if layout.classify_line(entry.line).value == "stack"]
        assert stack_lines

    def test_flush_ops_emitted_for_tasks(self, swcc_machine):
        line = INC >> 5
        program = simple_program(flush=[line])
        # make the line dirty so the flush sends a message: do it by
        # having the task's ops store first
        program.phases[0].tasks[0].ops.insert(0, (OP_STORE, INC))
        stats = swcc_machine.run(program)
        assert stats.messages.wb_issued >= 4  # every task flushes
        assert stats.messages.software_flush >= 1

    def test_input_invalidations_at_barrier(self, swcc_machine):
        lines = [(INC >> 5) + i for i in range(8)]
        stats = swcc_machine.run(simple_program(inputs=lines))
        assert stats.messages.inv_issued > 0


class TestOpDispatch:
    def test_compute_advances_time(self, hwcc_machine):
        quiet = Program("q", [Phase("p", [Task(ops=[(OP_COMPUTE, 10_000)],
                                               stack_words=0)],
                                    code_lines=0)])
        stats = hwcc_machine.run(quiet)
        assert stats.cycles >= 10_000

    def test_atomic_op_with_operand(self, hwcc_machine):
        addr = HEAP + 0x9000
        program = Program("a", [Phase("p", [
            Task(ops=[(OP_ATOMIC, addr, 7), (OP_ATOMIC, addr, 5)],
                 stack_words=0)], code_lines=0)])
        hwcc_machine.run(program)
        hwcc_machine.drain_caches()
        assert hwcc_machine.memsys.backing.read_word_addr(addr) == 12

    def test_unknown_op_rejected(self, hwcc_machine):
        from repro.errors import SimulationError
        program = Program("bad", [Phase("p", [Task(ops=[(99, 0)])])])
        with pytest.raises(SimulationError):
            hwcc_machine.run(program)

    def test_checked_load_mismatch_recorded(self, hwcc_machine):
        addr = HEAP + 0x100
        hwcc_machine.memsys.backing.write_word_addr(addr, 5)
        program = Program("c", [Phase("p", [
            Task(ops=[(OP_LOAD, addr, 999)], stack_words=0)], code_lines=0)])
        stats = hwcc_machine.run(program)
        assert stats.load_mismatches == [(addr, 999, 5)]

    def test_checked_load_match_clean(self, hwcc_machine):
        addr = HEAP + 0x100
        hwcc_machine.memsys.backing.write_word_addr(addr, 5)
        program = Program("c", [Phase("p", [
            Task(ops=[(OP_LOAD, addr, 5)], stack_words=0)], code_lines=0)])
        stats = hwcc_machine.run(program)
        assert stats.load_mismatches == []

    def test_phase_after_hook_runs(self, cohesion_machine):
        seen = []
        program = simple_program(2)
        program.phases[0].after = lambda machine: seen.append(machine)
        cohesion_machine.run(program)
        assert seen == [cohesion_machine]

    def test_ops_per_slice_does_not_change_results(self, hwcc_machine):
        from tests.conftest import make_machine
        results = []
        for slice_size in (1, 8, 64):
            machine = make_machine(Policy.hwcc_ideal())
            stats = machine.run(simple_program(n_tasks=6),
                                ops_per_slice=slice_size)
            results.append(stats.total_messages)
        assert len(set(results)) == 1


class TestDeterminism:
    def test_identical_runs_identical_stats(self):
        def run():
            machine = make_machine(Policy.cohesion())
            from repro.workloads import get_workload
            program = get_workload("gjk", scale=0.2).build(machine)
            stats = machine.run(program)
            return (stats.cycles, stats.total_messages, stats.tasks_executed)

        assert run() == run()


class TestStackAddressing:
    """The stack block generates word-aligned offsets into the core's
    stack region. Regression for an operator-precedence bug where
    ``base + offset & ~3`` masked the whole sum: on any base whose low
    bits are set, that rewrites addresses *below* the region."""

    @staticmethod
    def _executor(base, size):
        from types import SimpleNamespace

        from repro.runtime.executor import BspExecutor

        machine = SimpleNamespace(
            config=SimpleNamespace(track_data=False, n_cores=1),
            runtime=SimpleNamespace(queue_addr=0, barrier_addr=0,
                                    desc_base=0, desc_capacity=1),
            layout=SimpleNamespace(stack_region=lambda core: (base, size)),
            obs=None)
        return BspExecutor(machine, Program("stub", []))

    def test_misaligned_base_and_cursor_stay_in_region(self):
        # Deliberately misaligned: real layouts are line-aligned, which
        # is exactly why the precedence bug was invisible to them.
        base, size = 0x1000_0002, 64
        executor = self._executor(base, size)
        executor._stack_cursors[0] = 6  # mid-word cursor, wraps below
        ops = executor._stack_block(0, 20)  # 80 bytes > size: wraps
        assert len(ops) == 40  # store+load per word
        for _kind, addr in ops:
            offset = addr - base
            assert 0 <= offset < size, hex(addr)
            assert offset % 4 == 0, hex(addr)

    def test_cursor_advances_modulo_region(self):
        executor = self._executor(0x1000_0000, 64)
        executor._stack_block(0, 20)
        assert executor._stack_cursors[0] == (4 * 20) % 64

    def test_real_layout_addresses_classify_as_stack(self, hwcc_machine):
        from repro.types import SegmentClass

        layout = hwcc_machine.layout
        from repro.runtime.executor import BspExecutor
        ex = BspExecutor(hwcc_machine, simple_program(1))
        core = 3
        ex._stack_cursors[core] = 12
        for _kind, addr in ex._stack_block(core, 8):
            base, size = layout.stack_region(core)
            assert base <= addr < base + size
            assert layout.classify(addr) is SegmentClass.STACK
