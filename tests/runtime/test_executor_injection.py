"""Executor-injected overheads: stacks, descriptors, code fetches."""

import pytest

from repro import Policy
from repro.runtime.program import Phase, Program, Task
from repro.types import OP_COMPUTE, SegmentClass

from tests.conftest import make_machine


def quiet_program(n_tasks, stack_words=8, phases=1, code_lines=2):
    return Program("quiet", [
        Phase(f"p{p}", [Task(ops=[(OP_COMPUTE, 5)], stack_words=stack_words)
                        for _ in range(n_tasks)],
              code_addr=0x10000, code_lines=code_lines)
        for p in range(phases)])


class TestStackInjection:
    def test_stack_traffic_is_private_per_core(self, hwcc_machine):
        machine = hwcc_machine
        machine.run(quiet_program(machine.config.n_cores * 2))
        layout = machine.layout
        ms = machine.memsys
        for bank_dir in ms.dirs:
            for entry in bank_dir.entries():
                if layout.classify_line(entry.line) is SegmentClass.STACK:
                    assert entry.n_sharers == 1  # stacks never shared

    def test_stack_cursor_wraps_within_stack(self, hwcc_machine):
        machine = hwcc_machine
        layout = machine.layout
        # enough tasks on few cores that cursors wrap the 4 KB stacks
        machine.run(quiet_program(machine.config.n_cores * 40,
                                  stack_words=32))
        for core in range(machine.config.n_cores):
            base, size = layout.stack_region(core)
            cluster, _local = machine.cluster_of_core(core)
            for entry in cluster.l2.lines():
                addr = entry.line << 5
                if layout.classify(addr) is SegmentClass.STACK:
                    owner = (addr - layout.stack_base) // layout.stack_bytes_per_core
                    assert 0 <= owner < machine.config.n_cores

    def test_zero_stack_words_skips_injection(self, hwcc_machine):
        machine = hwcc_machine
        machine.run(quiet_program(4, stack_words=0))
        layout = machine.layout
        stack_lines = [e for c in machine.clusters for e in c.l2.lines()
                       if layout.classify_line(e.line) is SegmentClass.STACK]
        assert stack_lines == []


class TestDescriptorInjection:
    def test_descriptor_reads_are_shared_heap_lines(self, hwcc_machine):
        machine = hwcc_machine
        stats = machine.run(quiet_program(machine.config.n_cores * 4))
        # descriptor loads contribute read requests even though the
        # tasks themselves touch no data
        assert stats.messages.read_request > 0

    def test_descriptor_array_wraps(self):
        from repro.runtime.system import DESC_CAPACITY
        machine = make_machine(Policy.hwcc_ideal())
        runtime = machine.runtime
        assert runtime.desc_capacity == DESC_CAPACITY
        # index beyond capacity maps back into the array in the executor
        from repro.runtime.executor import BspExecutor
        program = quiet_program(2)
        executor = BspExecutor(machine, program)
        big_index = DESC_CAPACITY + 3
        cluster = machine.clusters[0]
        t = executor._dequeue(cluster, 0, 0, big_index, 0.0)
        assert t > 0.0


class TestCodeInjection:
    def test_code_lines_fetched_once_per_core(self, hwcc_machine):
        machine = hwcc_machine
        stats = machine.run(quiet_program(machine.config.n_cores * 4,
                                          code_lines=4))
        # with warm L1Is, instruction requests stay near the cold
        # footprint: clusters x code lines (plus a little L2 churn)
        assert 0 < stats.messages.instruction_request <= 4 * len(machine.clusters) * 4

    def test_zero_code_lines(self, hwcc_machine):
        stats = hwcc_machine.run(quiet_program(4, code_lines=0))
        assert stats.messages.instruction_request == 0
