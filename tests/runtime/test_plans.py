"""Equality suite for compiled miss-path plans (repro.runtime.plans).

Every test drives the *same* operation sequence through two identically
configured machines -- one with plan compilation enabled (the default),
one with ``REPRO_PLANS=0`` -- and requires **bit-identical**
observables: per-op return times and values, the full protocol-visible
state snapshot, the L2->L3 message taxonomy, network/port/DRAM resource
statistics (after :meth:`PlanCache.settle`), and the obs event stream.

The generative half (hypothesis) explores random miss sequences over a
small line pool spanning both heaps, from cores in different clusters,
across all three policies -- random directory states arise organically
from the interleavings. The directed half pins the invalidation
contract: a ``region.valid`` flip mid-run must drop every compiled plan
and recompile, never replay stale domain classifications.
"""

import pytest

from repro import Policy
from repro.runtime.executor import _add
from tests.conftest import make_machine

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

COHERENT_HEAP = 0x2000_0000
INCOHERENT_HEAP = 0x4000_0000

#: Small pools per heap so sequences revisit lines: revisits are what
#: create directory churn (S -> M upgrades, multi-sharer probes,
#: read releases) and L3 set pressure.
ADDRS = tuple(COHERENT_HEAP + 32 * i for i in range(6)) + \
        tuple(INCOHERENT_HEAP + 32 * i for i in range(6))

POLICIES = {
    "swcc": Policy.swcc,
    "hwcc": lambda: Policy.hwcc_real(entries_per_bank=512, assoc=8),
    "cohesion": Policy.cohesion,
}

OP_KINDS = ("load", "store", "ifetch", "flush", "inv", "atomic")


def _twin_machines(policy_name, monkeypatch, track_data=True):
    """One plans-on machine and one plans-off machine, same config."""
    monkeypatch.delenv("REPRO_PLANS", raising=False)
    planned = make_machine(POLICIES[policy_name](), track_data=track_data)
    monkeypatch.setenv("REPRO_PLANS", "0")
    interp = make_machine(POLICIES[policy_name](), track_data=track_data)
    monkeypatch.delenv("REPRO_PLANS", raising=False)
    assert planned.memsys._plans is not None
    assert interp.memsys._plans is None
    return planned, interp


def _record_obs(machine):
    events = []
    machine.obs.subscribe(lambda ev: events.append(
        (ev.time, ev.kind, ev.cluster, ev.core, ev.line, ev.addr,
         ev.value, ev.dur, ev.detail)))
    return events


def _drive(machine, ops):
    """Apply an op sequence through the raw cluster interface."""
    out = []
    t = 0.0
    for kind, core, slot, value in ops:
        cluster, local = machine.cluster_of_core(core)
        addr = ADDRS[slot]
        line = addr >> 5
        if kind == "load":
            t, v = cluster.load(local, addr, t)
            out.append(("load", t, v))
        elif kind == "store":
            t = cluster.store(local, addr, value, t)
            out.append(("store", t))
        elif kind == "ifetch":
            t = cluster.ifetch(local, addr, t)
            out.append(("ifetch", t))
        elif kind == "flush":
            t = cluster.flush_line(local, line, t)
            out.append(("flush", t))
        elif kind == "inv":
            t = cluster.invalidate_line(local, line, t)
            out.append(("inv", t))
        else:
            t, old = cluster.atomic(local, addr, _add, value, t)
            out.append(("atomic", t, old))
    return out


def _resource_fingerprint(machine):
    """Every statistic the deferred-stats layer is allowed to batch."""
    ms = machine.memsys
    if ms._plans is not None:
        ms._plans.settle()
    net = ms.net
    def res(r):
        return (r.acquisitions, r.total_busy, sorted(r._used.items()))
    return {
        "ports": [res(c.port) for c in machine.clusters],
        "up": [res(m) for m in net.up_links.members],
        "down": [res(m) for m in net.down_links.members],
        "xbar": res(net.crossbar),
        "bank_ports": [res(m) for m in ms.bank_ports.members],
        "dram": [res(m) for m in ms.dram.channels.members],
        "dram_accesses": list(ms.dram.accesses),
        "net_messages": net.messages,
        "l3": [(b.hits, b.misses, b.evictions) for b in ms.l3],
        "counters": [(name, getattr(ms.counters, name))
                     for name in ms.counters.__slots__],
        "max_time": ms.max_time,
    }


def _assert_equal(planned, interp, out_planned, out_interp,
                  obs_planned=None, obs_interp=None):
    assert out_planned == out_interp
    assert _resource_fingerprint(planned) == _resource_fingerprint(interp)
    assert planned.snapshot() == interp.snapshot()
    if obs_planned is not None:
        assert obs_planned == obs_interp


ops_strategy = st.lists(
    st.tuples(st.sampled_from(OP_KINDS),
              st.integers(min_value=0, max_value=15),
              st.integers(min_value=0, max_value=len(ADDRS) - 1),
              st.integers(min_value=0, max_value=2 ** 31 - 1)),
    min_size=1, max_size=60)


class TestGenerativeEquality:
    """Random miss sequences, plan-compiled vs interpreted."""

    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(ops=ops_strategy)
    def test_random_sequences_bit_identical(self, policy_name, ops,
                                            monkeypatch):
        planned, interp = _twin_machines(policy_name, monkeypatch)
        _assert_equal(planned, interp, _drive(planned, ops),
                      _drive(interp, ops))

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(ops=ops_strategy)
    def test_observed_replay_emits_identical_streams(self, ops,
                                                     monkeypatch):
        """obs-active signatures carry every emit the interpreter has."""
        planned, interp = _twin_machines("cohesion", monkeypatch)
        obs_p = _record_obs(planned)
        obs_i = _record_obs(interp)
        _assert_equal(planned, interp, _drive(planned, ops),
                      _drive(interp, ops), obs_p, obs_i)
        assert planned.obs.active and interp.obs.active


class TestDirectedEquality:
    """Deterministic sequence long enough to prove replay happened."""

    SEQ = [(("load", "store", "atomic", "flush")[i % 4],
            (i * 5) % 16, (i * 7) % len(ADDRS), i * 3 + 1)
           for i in range(160)]

    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    def test_plans_replay_and_match(self, policy_name, monkeypatch):
        planned, interp = _twin_machines(policy_name, monkeypatch)
        _assert_equal(planned, interp, _drive(planned, self.SEQ),
                      _drive(interp, self.SEQ))
        stats = planned.memsys._plans.stats()
        assert stats["compiled"] > 0
        assert stats["replayed"] > 0


class TestInvalidation:
    """region.valid flips must recompile, never replay stale plans."""

    def _warm(self, machine, region_addr):
        ops = [("store", i % 16, 6 + i % 6, i + 1) for i in range(40)]
        ops += [("load", i % 16, 6 + i % 6, 0) for i in range(40)]
        return _drive(machine, ops)

    def test_region_flip_drops_compiled_plans(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLANS", raising=False)
        machine = make_machine(Policy.cohesion())
        region = machine.memsys.coarse.add(INCOHERENT_HEAP, 4096,
                                           name="test-heap")
        cache = machine.memsys._plans
        self._warm(machine, INCOHERENT_HEAP)
        assert cache.compiled > 0
        assert cache.sources
        gen = cache.generation
        region.valid = False
        assert not cache.sources, "valid flip must drop every plan"
        assert cache.generation == gen + 1

    def test_flip_mid_run_recompiles_and_stays_identical(self, monkeypatch):
        """The full contract: flip mid-run, equality end to end."""
        monkeypatch.delenv("REPRO_PLANS", raising=False)
        planned = make_machine(Policy.cohesion())
        monkeypatch.setenv("REPRO_PLANS", "0")
        interp = make_machine(Policy.cohesion())
        monkeypatch.delenv("REPRO_PLANS", raising=False)
        outs = []
        for machine in (planned, interp):
            region = machine.memsys.coarse.add(INCOHERENT_HEAP, 4096,
                                               name="test-heap")
            out = self._warm(machine, INCOHERENT_HEAP)
            # Software discipline before the domain flip: push dirty
            # data out and drop the cached copies, as the runtime's
            # convert_region path would.
            out += _drive(machine, [("flush", 0, 6 + i, 0)
                                    for i in range(6)])
            out += _drive(machine, [("inv", 0, 6 + i, 0)
                                    for i in range(6)])
            region.valid = False
            # Same addresses, now hardware-coherent: fresh signatures.
            out += self._warm(machine, INCOHERENT_HEAP)
            outs.append(out)
        _assert_equal(planned, interp, outs[0], outs[1])
        stats = planned.memsys._plans.stats()
        assert stats["compiled"] > 0, "post-flip traffic must recompile"
        assert stats["replayed"] > 0
