"""Program/Phase/Task structures."""

from repro.runtime.program import Phase, Program, Task
from repro.types import OP_LOAD, OP_STORE


class TestTask:
    def test_defaults(self):
        task = Task(ops=[(OP_LOAD, 0)])
        assert task.flush_lines == ()
        assert task.input_lines == ()
        assert task.stack_words == 8
        assert task.op_count == 1

    def test_metadata_carried(self):
        task = Task(ops=[], flush_lines=[1, 2], input_lines=[3],
                    stack_words=0)
        assert list(task.flush_lines) == [1, 2]
        assert list(task.input_lines) == [3]


class TestPhase:
    def test_totals(self):
        tasks = [Task(ops=[(OP_LOAD, 0), (OP_STORE, 4)]),
                 Task(ops=[(OP_LOAD, 8)])]
        phase = Phase("p", tasks)
        assert phase.total_ops == 3
        assert phase.after is None
        assert phase.code_lines == 4


class TestProgram:
    def test_totals(self):
        phases = [Phase("a", [Task(ops=[(OP_LOAD, 0)])]),
                  Phase("b", [Task(ops=[]), Task(ops=[(OP_LOAD, 4)] * 3)])]
        program = Program("prog", phases)
        assert program.total_tasks == 3
        assert program.total_ops == 4
        assert program.expected == {}

    def test_expected_is_per_instance(self):
        a = Program("a", [])
        b = Program("b", [])
        a.expected[1] = 2
        assert b.expected == {}
