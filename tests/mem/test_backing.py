"""Functional backing store."""

from hypothesis import given, strategies as st

from repro.mem.backing import BackingStore, NullBackingStore


class TestBackingStore:
    def test_unwritten_reads_zero(self):
        store = BackingStore()
        assert store.read_word_addr(0x1234) == 0
        assert store.read_line(7) == [0] * 8

    def test_word_roundtrip(self):
        store = BackingStore()
        store.write_word_addr(0x100, 99)
        assert store.read_word_addr(0x100) == 99
        assert store.read_word_addr(0x103) == 99  # same word
        assert store.read_word_addr(0x104) == 0

    def test_line_write_respects_mask(self):
        store = BackingStore()
        store.write_line(2, [1, 2, 3, 4, 5, 6, 7, 8], mask=0b0000_0101)
        assert store.read_line(2) == [1, 0, 3, 0, 0, 0, 0, 0]

    def test_line_word_addressing_consistent(self):
        store = BackingStore()
        store.write_line(3, list(range(8)), mask=0xFF)
        for w in range(8):
            assert store.read_line_word(3, w) == w
            assert store.read_word_addr(3 * 32 + 4 * w) == w

    def test_atomic_rmw_returns_old(self):
        store = BackingStore()
        store.write_word_addr(0x40, 10)
        old = store.atomic_rmw(0x40, lambda a, b: a + b, 5)
        assert old == 10
        assert store.read_word_addr(0x40) == 15

    def test_atomic_rmw_wraps_32bit(self):
        store = BackingStore()
        store.write_word_addr(0, 0xFFFFFFFF)
        store.atomic_rmw(0, lambda a, b: a + b, 1)
        assert store.read_word_addr(0) == 0

    def test_len_counts_words(self):
        store = BackingStore()
        store.write_word_addr(0, 1)
        store.write_word_addr(4, 1)
        store.write_word_addr(0, 2)
        assert len(store) == 2

    @given(st.dictionaries(st.integers(0, 1000), st.integers(0, 2**32 - 1),
                           max_size=50))
    def test_last_write_wins(self, writes):
        store = BackingStore()
        for word, value in writes.items():
            store.write_word_addr(word * 4, value)
        for word, value in writes.items():
            assert store.read_word_addr(word * 4) == value


class TestNullBackingStore:
    def test_all_reads_zero(self):
        store = NullBackingStore()
        store.write_word_addr(0, 42)
        store.write_line(1, [1] * 8, 0xFF)
        assert store.read_word_addr(0) == 0
        assert store.read_line(1) is None
        assert store.read_line_word(1, 0) == 0
        assert store.atomic_rmw(0, lambda a, b: a + b, 1) == 0
        assert len(store) == 0
