"""Set-associative cache with per-word valid/dirty masks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.address import FULL_WORD_MASK
from repro.mem.cache import Cache, CacheLine


class TestCacheLine:
    def test_defaults_fully_valid_clean(self):
        line = CacheLine(5)
        assert line.fully_valid
        assert not line.dirty

    def test_write_word_sets_masks(self):
        line = CacheLine(5, valid_mask=0)
        line.write_word(3)
        assert line.valid_mask == 0b1000
        assert line.dirty_mask == 0b1000
        assert line.dirty

    def test_write_word_stores_value_when_tracked(self):
        line = CacheLine(5, data=[0] * 8)
        line.write_word(2, 42)
        assert line.read_word(2) == 42

    def test_read_word_untracked_returns_none(self):
        line = CacheLine(5)
        assert line.read_word(0) is None

    def test_clean_clears_dirty_only(self):
        line = CacheLine(5, valid_mask=0xFF, dirty_mask=0x0F)
        line.clean()
        assert line.dirty_mask == 0
        assert line.valid_mask == 0xFF


class TestCacheBasics:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache(10, 4)
        with pytest.raises(ValueError):
            Cache(0, 1)

    def test_miss_then_hit(self):
        cache = Cache(16, 2)
        assert cache.lookup(7) is None
        cache.allocate(7)
        assert cache.lookup(7) is not None
        assert cache.hits == 1
        assert cache.misses == 1

    def test_peek_does_not_count(self):
        cache = Cache(16, 2)
        cache.allocate(7)
        cache.peek(7)
        cache.peek(8)
        assert cache.hits == 0
        assert cache.misses == 0

    def test_contains_and_len(self):
        cache = Cache(16, 2)
        cache.allocate(1)
        cache.allocate(2)
        assert 1 in cache and 2 in cache and 3 not in cache
        assert len(cache) == 2

    def test_remove(self):
        cache = Cache(16, 2)
        cache.allocate(1)
        entry = cache.remove(1)
        assert entry.line == 1
        assert 1 not in cache
        assert cache.remove(1) is None

    def test_same_set_eviction_lru(self):
        cache = Cache(16, 2)  # 8 sets
        a, b, c = 3, 3 + 8, 3 + 16  # all map to set 3
        cache.allocate(a)
        cache.allocate(b)
        cache.lookup(a)            # refresh a; b becomes LRU
        entry, victim = cache.allocate(c)
        assert victim is not None and victim.line == b
        assert a in cache and c in cache and b not in cache
        assert cache.evictions == 1

    def test_allocate_existing_merges_masks(self):
        cache = Cache(16, 2)
        cache.allocate(1, valid_mask=0b0001, dirty_mask=0b0001, incoherent=True)
        entry, victim = cache.allocate(1, valid_mask=0b0010, incoherent=True)
        assert victim is None
        assert entry.valid_mask == 0b0011
        assert entry.dirty_mask == 0b0001

    def test_different_sets_do_not_conflict(self):
        cache = Cache(16, 2)
        for line in range(8):  # one per set
            _entry, victim = cache.allocate(line)
            assert victim is None
        assert len(cache) == 8

    def test_invalidate_where(self):
        cache = Cache(16, 2)
        cache.allocate(1, incoherent=True)
        cache.allocate(2, incoherent=False)
        cache.allocate(3, incoherent=True)
        removed = cache.invalidate_where(lambda e: e.incoherent)
        assert sorted(e.line for e in removed) == [1, 3]
        assert len(cache) == 1

    def test_track_data_allocates_storage(self):
        cache = Cache(16, 2, track_data=True)
        entry, _ = cache.allocate(1)
        assert entry.data == [0] * 8

    def test_capacity_property(self):
        assert Cache(2048, 16).capacity_lines == 2048

    def test_lines_iterates_all(self):
        cache = Cache(16, 2)
        for line in (1, 9, 4):
            cache.allocate(line)
        assert sorted(e.line for e in cache.lines()) == [1, 4, 9]


class TestCacheModelBased:
    """LRU cache behaviour against a reference model."""

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=40), min_size=1,
                    max_size=200))
    def test_never_exceeds_capacity_and_keeps_mru(self, accesses):
        cache = Cache(8, 2)  # 4 sets x 2 ways
        last_access = {}
        for tick, line in enumerate(accesses):
            if cache.lookup(line) is None:
                cache.allocate(line)
            last_access[line] = tick
        assert len(cache) <= 8
        for set_index in range(cache.n_sets):
            assert len(cache.sets[set_index]) <= cache.assoc
        # the most recently accessed line must still be resident
        mru = accesses[-1]
        assert mru in cache

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 7)),
                    min_size=1, max_size=100))
    def test_dirty_words_survive_until_eviction(self, writes):
        cache = Cache(64, 4, track_data=True)
        shadow = {}
        evicted = set()
        for line, word in writes:
            entry = cache.peek(line)
            if entry is None:
                entry, victim = cache.allocate(line, valid_mask=0)
                if victim is not None:
                    evicted.add(victim.line)
                    for w in range(8):
                        if victim.dirty_mask & (1 << w):
                            shadow.pop((victim.line, w), None)
            entry.write_word(word, line * 8 + word)
            shadow[(line, word)] = line * 8 + word
        for (line, word), value in shadow.items():
            entry = cache.peek(line)
            if entry is not None:
                assert entry.read_word(word) == value
