"""Address arithmetic and L3-bank/DRAM-channel mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.address import (ADDRESS_SPACE, FULL_WORD_MASK, LINE_BYTES,
                               WORDS_PER_LINE, AddressMap, align_down,
                               align_up, line_base, line_of, lines_in_range,
                               word_bit, word_index)

addresses = st.integers(min_value=0, max_value=ADDRESS_SPACE - 1)


class TestLineMath:
    def test_line_of_base(self):
        assert line_of(0) == 0
        assert line_of(31) == 0
        assert line_of(32) == 1

    def test_line_base_roundtrip(self):
        assert line_base(line_of(0x1234)) == 0x1220

    def test_word_index_cycles(self):
        assert [word_index(4 * i) for i in range(8)] == list(range(8))
        assert word_index(32) == 0

    def test_word_bit_one_hot(self):
        for i in range(8):
            assert word_bit(4 * i) == 1 << i

    def test_full_mask_covers_line(self):
        assert FULL_WORD_MASK == (1 << WORDS_PER_LINE) - 1
        assert WORDS_PER_LINE * 4 == LINE_BYTES

    @given(addresses)
    def test_line_contains_address(self, addr):
        base = line_base(line_of(addr))
        assert base <= addr < base + LINE_BYTES

    def test_align_down_up(self):
        assert align_down(33) == 32
        assert align_down(32) == 32
        assert align_up(33) == 64
        assert align_up(64) == 64

    @given(addresses)
    def test_align_bracket(self, addr):
        assert align_down(addr) <= addr <= align_up(addr)
        assert align_up(addr) - align_down(addr) in (0, LINE_BYTES)

    def test_lines_in_range_empty(self):
        assert list(lines_in_range(100, 0)) == []
        assert list(lines_in_range(100, -4)) == []

    def test_lines_in_range_single(self):
        assert list(lines_in_range(0, 1)) == [0]
        assert list(lines_in_range(0, 32)) == [0]
        assert list(lines_in_range(0, 33)) == [0, 1]

    def test_lines_in_range_straddle(self):
        assert list(lines_in_range(30, 4)) == [0, 1]

    @given(addresses, st.integers(min_value=1, max_value=4096))
    def test_lines_in_range_covers(self, base, size):
        lines = list(lines_in_range(base, size))
        assert lines[0] == line_of(base)
        assert lines[-1] == line_of(base + size - 1)
        assert lines == sorted(lines)


class TestAddressMap:
    def test_default_geometry(self):
        amap = AddressMap()
        assert amap.n_channels == 8
        assert amap.n_l3_banks == 32
        assert amap.banks_per_channel == 4

    def test_channel_stride_is_2kb(self):
        amap = AddressMap()
        assert amap.channel_of(0) == 0
        assert amap.channel_of(2047) == 0
        assert amap.channel_of(2048) == 1
        assert amap.channel_of(8 * 2048) == 0

    def test_bank_groups_by_channel(self):
        amap = AddressMap()
        for addr in range(0, 1 << 20, 4096):
            bank = amap.bank_of(addr)
            assert amap.channel_of_bank(bank) == amap.channel_of(addr)

    @given(addresses)
    def test_bank_in_range(self, addr):
        amap = AddressMap()
        assert 0 <= amap.bank_of(addr) < 32

    @given(addresses)
    def test_line_and_byte_mapping_agree(self, addr):
        amap = AddressMap()
        assert amap.bank_of_line(line_of(addr)) == amap.bank_of(align_down(addr))

    def test_same_line_same_bank(self):
        amap = AddressMap()
        for base in (0, 0x1000, 0x12340):
            banks = {amap.bank_of(base + off) for off in range(0, 32, 4)}
            assert len(banks) == 1

    def test_single_channel_machine(self):
        amap = AddressMap(n_channels=1, n_l3_banks=1)
        assert amap.bank_of(0x12345678) == 0
        assert amap.channel_of(0xFFFFFFFF) == 0

    def test_rejects_non_pow2_channels(self):
        with pytest.raises(ValueError):
            AddressMap(n_channels=3, n_l3_banks=6)

    def test_rejects_banks_not_multiple_of_channels(self):
        with pytest.raises(ValueError):
            AddressMap(n_channels=4, n_l3_banks=6)

    def test_rejects_non_pow2_banks_per_channel(self):
        with pytest.raises(ValueError):
            AddressMap(n_channels=2, n_l3_banks=6)

    def test_uniform_bank_distribution(self):
        amap = AddressMap()
        counts = [0] * 32
        for line in range(32 * 64):
            counts[amap.bank_of_line(line)] += 1
        assert max(counts) == min(counts)
