"""Exception hierarchy."""

import pytest

from repro.errors import (AllocationError, CoherenceRaceError, ConfigError,
                          ProtocolError, RegionError, ReproError,
                          SimulationError)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigError, AllocationError, RegionError, ProtocolError,
        SimulationError])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_race_error_carries_context(self):
        error = CoherenceRaceError(0x1234, (3, 7), 0b0101)
        assert isinstance(error, ReproError)
        assert error.line_addr == 0x1234
        assert error.clusters == (3, 7)
        assert error.overlap_mask == 0b0101
        text = str(error)
        assert "0x1234" in text and "(3, 7)" in text and "0x05" in text

    def test_race_error_clusters_normalised_to_tuple(self):
        error = CoherenceRaceError(1, [2, 1], 1)
        assert error.clusters == (2, 1)
