"""Generative end-to-end check: random well-synchronised BSP programs.

Hypothesis builds random multi-phase programs that follow the
Task-Centric discipline -- within a phase writers own disjoint words,
every written line is flushed at task end, and every phase-variant line
read or written is invalidated at the barrier -- and the machine must
deliver exact values under every memory model. This is the generative
generalisation of the hand-built workload tests: if any protocol path
(write-allocate merging, flush merging, probes, transitions, partial-line
fills) mishandles a corner, some generated program exposes it as a load
mismatch or a failed memory audit.
"""

from hypothesis import given, settings, strategies as st

from repro import Policy
from repro.runtime.program import Phase, Program, Task
from repro.types import OP_LOAD, OP_STORE

from tests.conftest import make_machine

BASES = {
    "sw": 0x4000_0000,   # incoherent heap: SWcc under Cohesion
    "hw": 0x2100_0000,   # coherent heap (clear of runtime cells)
}
N_LINES = 16  # pool of lines per region
WORDS = 8


@st.composite
def bsp_programs(draw):
    """A 2-3 phase program; each phase partitions written words across
    tasks, reads anything written in *earlier* phases, and carries the
    SWcc coherence metadata its writes/reads require."""
    n_phases = draw(st.integers(2, 3))
    region = draw(st.sampled_from(["sw", "hw"]))
    base_line = BASES[region] >> 5
    shadow = {}  # word addr -> value (build-time sequential semantics)
    phases = []
    salt = 0
    for phase_index in range(n_phases):
        n_tasks = draw(st.integers(2, 6))
        # partition a random subset of (line, word) slots among tasks
        slots = draw(st.lists(
            st.tuples(st.integers(0, N_LINES - 1), st.integers(0, WORDS - 1)),
            min_size=n_tasks, max_size=24, unique=True))
        # BSP: reads may only observe *earlier-phase* writes, and not
        # words that some task rewrites during this phase (intra-phase
        # read/write ordering across tasks is undefined).
        rewritten = {(base_line + li) * 32 + 4 * w for li, w in slots}
        readable = sorted(set(shadow) - rewritten)
        tasks = []
        for t in range(n_tasks):
            my_slots = slots[t::n_tasks]
            ops = []
            flush = set()
            inputs = set()
            # read a few previously written words (checked loads)
            for addr in draw(st.lists(
                    st.sampled_from(readable or [0]), max_size=6)):
                if addr:
                    ops.append((OP_LOAD, addr, shadow[addr]))
                    inputs.add(addr >> 5)
            for line_index, word in my_slots:
                addr = (base_line + line_index) * 32 + 4 * word
                salt += 1
                value = (phase_index * 1_000_003 + salt) & 0xFFFFFFFF
                ops.append((OP_STORE, addr, value))
                shadow[addr] = value
                flush.add(addr >> 5)
                inputs.add(addr >> 5)
            tasks.append(Task(ops=ops, flush_lines=sorted(flush),
                              input_lines=sorted(inputs), stack_words=2))
        phases.append(Phase(f"p{phase_index}", tasks, code_addr=0x10000,
                            code_lines=2))
    return Program("random-bsp", phases), dict(shadow)


class TestRandomBspPrograms:
    @settings(max_examples=25, deadline=None)
    @given(bsp_programs(), st.sampled_from(["swcc", "hwcc", "cohesion"]))
    def test_every_policy_delivers_exact_values(self, built, policy_name):
        program, expected = built
        policy = {"swcc": Policy.swcc(), "hwcc": Policy.hwcc_ideal(),
                  "cohesion": Policy.cohesion()}[policy_name]
        machine = make_machine(policy)
        stats = machine.run(program)
        assert stats.load_mismatches == []
        assert machine.verify_expected(expected) == []

    @settings(max_examples=10, deadline=None)
    @given(bsp_programs())
    def test_tiny_l2_forces_eviction_paths(self, built):
        """The same discipline survives severe capacity pressure."""
        program, expected = built
        machine = make_machine(Policy.cohesion(), l2_bytes=1024,
                               l1d_bytes=64)
        stats = machine.run(program)
        assert stats.load_mismatches == []
        assert machine.verify_expected(expected) == []
