"""Shared enums and op-kind constants."""

from repro.types import (MESSAGE_STACK_ORDER, OP_ATOMIC, OP_BARRIER,
                         OP_COMPUTE, OP_IFETCH, OP_INV, OP_LOAD, OP_NAMES,
                         OP_STORE, OP_WB, DirectoryKind, DirState, Domain,
                         MessageType, PolicyKind, SegmentClass, SWState)


class TestOpConstants:
    def test_all_distinct(self):
        kinds = [OP_LOAD, OP_STORE, OP_ATOMIC, OP_IFETCH, OP_WB, OP_INV,
                 OP_COMPUTE, OP_BARRIER]
        assert len(set(kinds)) == len(kinds)

    def test_names_cover_all_kinds(self):
        assert set(OP_NAMES) == {OP_LOAD, OP_STORE, OP_ATOMIC, OP_IFETCH,
                                 OP_WB, OP_INV, OP_COMPUTE, OP_BARRIER}
        assert OP_NAMES[OP_LOAD] == "load"


class TestEnums:
    def test_message_stack_order_is_figure_2_legend(self):
        assert len(MESSAGE_STACK_ORDER) == len(MessageType)
        assert MESSAGE_STACK_ORDER[0] is MessageType.READ_REQUEST
        assert MESSAGE_STACK_ORDER[-1] is MessageType.PROBE_RESPONSE

    def test_domains(self):
        assert Domain.HWCC.value == "hwcc"
        assert Domain.SWCC.value == "swcc"

    def test_dir_states_msi_without_e_and_o(self):
        assert {s.value for s in DirState} == {"S", "M"}

    def test_sw_states_match_figure_6(self):
        assert {s.value for s in SWState} == {
            "I", "SWCL", "SWPC", "SWPD", "SWIM"}

    def test_segment_classes_match_figure_9c(self):
        assert {s.value for s in SegmentClass} == {
            "code", "stack", "heap_global"}

    def test_policy_and_directory_kinds(self):
        assert {p.value for p in PolicyKind} == {"swcc", "hwcc", "cohesion"}
        assert {d.value for d in DirectoryKind} == {
            "infinite", "sparse", "dir4b"}
