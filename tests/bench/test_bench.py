"""The repro bench harness, grading logic, and committed baseline."""

import copy
import json

import pytest

from repro.bench import (BENCH_SCHEMA, PINNED_MATRIX, BenchDocError,
                         BenchSpec, check_doc, compare_runs,
                         default_baseline_path, format_bench_table,
                         format_compare_table, run_bench, select_specs,
                         summary_markdown)
from repro.errors import SimulationError

TINY_SPEC = BenchSpec("gjk-swcc-tiny", "gjk", "swcc", 2, 0.12)


@pytest.fixture(scope="module")
def tiny_doc():
    return run_bench([TINY_SPEC], reps=2)


class TestHarness:
    def test_document_shape(self, tiny_doc):
        assert tiny_doc["schema"] == BENCH_SCHEMA
        assert tiny_doc["reps"] == 2
        cell = tiny_doc["cells"]["gjk-swcc-tiny"]
        assert cell["workload"] == "gjk" and cell["policy"] == "swcc"
        assert cell["wall_s"] > 0 and cell["cpu_s"] > 0
        assert cell["ops"] > 0 and cell["tasks"] > 0 and cell["cycles"] > 0
        assert cell["ops_per_sec"] > 0
        assert cell["max_rss_kb"] > 0  # Linux/macOS both report RSS

    def test_document_is_json_round_trippable(self, tiny_doc):
        assert json.loads(json.dumps(tiny_doc)) == tiny_doc

    def test_counters_are_deterministic(self, tiny_doc):
        again = run_bench([TINY_SPEC], reps=1)
        for field in ("cycles", "ops", "tasks"):
            assert (again["cells"]["gjk-swcc-tiny"][field]
                    == tiny_doc["cells"]["gjk-swcc-tiny"][field])

    def test_rejects_empty_and_bad_reps(self):
        with pytest.raises(SimulationError):
            run_bench([])
        with pytest.raises(SimulationError):
            run_bench([TINY_SPEC], reps=0)

    def test_select_specs(self):
        assert select_specs(None) == list(PINNED_MATRIX)
        chosen = select_specs("kmeans,gjk")
        assert chosen and all("kmeans" in s.key or "gjk" in s.key
                              for s in chosen)
        with pytest.raises(SimulationError, match="no cells match"):
            select_specs("zebra")


class TestCompare:
    def test_identical_runs_are_clean(self, tiny_doc):
        result = compare_runs(tiny_doc, tiny_doc)
        assert result.ok
        assert "within" in result.summary_line()
        assert "ok" in format_compare_table(result)

    def test_slower_flagged(self, tiny_doc):
        slow = copy.deepcopy(tiny_doc)
        slow["cells"]["gjk-swcc-tiny"]["wall_s"] *= 2.0
        result = compare_runs(tiny_doc, slow, threshold=0.25)
        assert not result.ok
        assert result.regressions == ["gjk-swcc-tiny"]
        # ... but a generous threshold forgives the same run.
        assert compare_runs(tiny_doc, slow, threshold=2.0).ok

    def test_faster_is_never_a_regression(self, tiny_doc):
        fast = copy.deepcopy(tiny_doc)
        fast["cells"]["gjk-swcc-tiny"]["wall_s"] /= 10.0
        assert compare_runs(tiny_doc, fast).ok

    def test_counter_drift_flagged_regardless_of_timing(self, tiny_doc):
        drifted = copy.deepcopy(tiny_doc)
        drifted["cells"]["gjk-swcc-tiny"]["cycles"] += 1
        result = compare_runs(tiny_doc, drifted, threshold=100.0)
        assert not result.ok
        assert result.drifted == ["gjk-swcc-tiny"]
        assert "--update-baseline" in result.summary_line()

    def test_disjoint_keys_rejected(self, tiny_doc):
        other = copy.deepcopy(tiny_doc)
        other["cells"] = {"different": other["cells"]["gjk-swcc-tiny"]}
        with pytest.raises(BenchDocError, match="share no cell keys"):
            compare_runs(tiny_doc, other)

    def test_schema_mismatch_rejected(self, tiny_doc):
        stale = copy.deepcopy(tiny_doc)
        stale["schema"] = BENCH_SCHEMA + 1
        with pytest.raises(BenchDocError, match="schema"):
            compare_runs(stale, tiny_doc)

    def test_malformed_docs_rejected(self):
        with pytest.raises(BenchDocError):
            check_doc([])
        with pytest.raises(BenchDocError):
            check_doc({"schema": BENCH_SCHEMA, "cells": {}})
        with pytest.raises(BenchDocError):
            check_doc({"schema": BENCH_SCHEMA, "cells": {"x": {}}})

    def test_added_and_missing_cells_reported(self, tiny_doc):
        grown = copy.deepcopy(tiny_doc)
        grown["cells"]["new-cell"] = copy.deepcopy(
            grown["cells"]["gjk-swcc-tiny"])
        result = compare_runs(tiny_doc, grown)
        assert result.added == ["new-cell"] and not result.missing
        back = compare_runs(grown, tiny_doc)
        assert back.missing == ["new-cell"] and not back.added


class TestRendering:
    def test_table_lists_every_cell(self, tiny_doc):
        table = format_bench_table(tiny_doc)
        assert "gjk-swcc-tiny" in table and "wall s" in table

    def test_summary_markdown(self, tiny_doc):
        text = summary_markdown(tiny_doc, compare_runs(tiny_doc, tiny_doc))
        assert text.startswith("### repro bench")
        assert "| `gjk-swcc-tiny` |" in text
        assert "within" in text


class TestCommittedBaseline:
    """benchmarks/baseline.json stays valid and covers the pinned matrix."""

    def test_baseline_parses_and_covers_matrix(self):
        path = default_baseline_path()
        assert path.is_file(), f"missing committed baseline at {path}"
        cells = check_doc(json.loads(path.read_text()), "baseline")
        assert set(cells) == {spec.key for spec in PINNED_MATRIX}

    def test_baseline_cells_match_specs(self):
        cells = json.loads(default_baseline_path().read_text())["cells"]
        for spec in PINNED_MATRIX:
            cell = cells[spec.key]
            assert cell["workload"] == spec.workload
            assert cell["policy"] == spec.policy
            assert cell["n_clusters"] == spec.n_clusters
            assert cell["scale"] == spec.scale
            assert cell["track_data"] == spec.track_data

    def test_matrix_includes_flagship_cell(self):
        flagship = {(s.workload, s.policy, s.n_clusters, s.scale)
                    for s in PINNED_MATRIX}
        assert ("kmeans", "cohesion", 16, 1.0) in flagship


class TestProfile:
    """``repro bench --profile``: a committed answer to "what dominates
    now?", produced outside any timed region."""

    @pytest.fixture(scope="class")
    def profile_doc(self):
        from repro.bench import profile_cells
        return profile_cells([TINY_SPEC], top=10)

    def test_document_shape(self, profile_doc):
        from repro.bench import PROFILE_SCHEMA
        assert profile_doc["schema"] == PROFILE_SCHEMA
        assert profile_doc["top"] == 10
        cell = profile_doc["cells"][TINY_SPEC.key]
        assert cell["total_s"] > 0
        assert 1 <= len(cell["functions"]) <= 10
        for row in cell["functions"]:
            assert row["ncalls"] >= 1
            assert row["cumtime_s"] >= row["tottime_s"] >= 0
            assert ":" in row["func"]

    def test_rows_sorted_by_exclusive_time(self, profile_doc):
        rows = profile_doc["cells"][TINY_SPEC.key]["functions"]
        tots = [row["tottime_s"] for row in rows]
        assert tots == sorted(tots, reverse=True)

    def test_document_is_json_round_trippable(self, profile_doc):
        assert json.loads(json.dumps(profile_doc)) == profile_doc

    def test_rejects_bad_top(self):
        from repro.bench import profile_cells
        with pytest.raises(SimulationError):
            profile_cells([TINY_SPEC], top=0)

    def test_table_names_the_cell(self, profile_doc):
        from repro.bench import format_profile_table
        assert TINY_SPEC.key in format_profile_table(profile_doc)
