"""CLI figure regeneration at tiny scale (every figure target)."""

import pytest

from repro.cli import main


@pytest.fixture
def tiny(monkeypatch):
    monkeypatch.setenv("REPRO_CLUSTERS", "1")
    monkeypatch.setenv("REPRO_SCALE", "0.1")


def run_figure(tmp_path, name, extra=()):
    code = main(["figures", name, "--out", str(tmp_path),
                 "--clusters", "1", "--scale", "0.1", *extra])
    assert code == 0
    return tmp_path / f"{name}.txt"


class TestFigureTargets:
    def test_fig02(self, tmp_path, tiny, capsys):
        path = run_figure(tmp_path, "fig02")
        text = path.read_text()
        assert "[cg]" in text and "[stencil]" in text
        assert "SWcc" in text and "HWccIdeal" in text

    def test_fig08(self, tmp_path, tiny, capsys):
        path = run_figure(tmp_path, "fig08")
        assert "HWccReal" in path.read_text()

    def test_fig09a(self, tmp_path, tiny, capsys):
        path = run_figure(tmp_path, "fig09a")
        text = path.read_text()
        assert "256" in text and "16384" in text

    def test_fig09c(self, tmp_path, tiny, capsys):
        path = run_figure(tmp_path, "fig09c")
        text = path.read_text()
        assert "Cohesion" in text and "HWcc" in text

    def test_fig10(self, tmp_path, tiny, capsys):
        path = run_figure(tmp_path, "fig10")
        text = path.read_text()
        assert "CohesionLimited" in text and "HWccLimited" in text

    def test_ablation(self, tmp_path, tiny, capsys):
        path = run_figure(tmp_path, "ablation")
        assert "stack-only" in path.read_text()
