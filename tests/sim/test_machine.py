"""Machine wiring, drain, verification."""

import pytest

from repro import Machine, MachineConfig, Policy
from repro.runtime.layout import AddressLayout

from tests.conftest import make_machine

HEAP = 0x2000_0000


class TestWiring:
    def test_cluster_count(self, hwcc_machine):
        assert len(hwcc_machine.clusters) == hwcc_machine.config.n_clusters
        assert hwcc_machine.memsys.clusters is not None

    def test_cluster_of_core(self, hwcc_machine):
        cluster, local = hwcc_machine.cluster_of_core(9)
        assert cluster is hwcc_machine.clusters[1]
        assert local == 1

    def test_layout_core_count_must_match(self):
        config = MachineConfig(track_data=True).scaled(2)
        with pytest.raises(ValueError):
            Machine(config, Policy.swcc(), AddressLayout(n_cores=64))

    def test_runtime_booted_coarse_regions(self, cohesion_machine):
        coarse = cohesion_machine.memsys.coarse
        names = sorted(region.name for region in coarse)
        assert names == ["code", "globals", "stacks"]

    def test_reset_message_counters(self, hwcc_machine):
        hwcc_machine.clusters[0].load(0, HEAP, 0.0)
        assert hwcc_machine.memsys.counters.total() > 0
        hwcc_machine.reset_message_counters()
        assert hwcc_machine.memsys.counters.total() == 0


class TestDrainAndVerify:
    def test_drain_pushes_dirty_l2_data(self, hwcc_machine):
        hwcc_machine.clusters[0].store(0, HEAP, 42, 0.0)
        assert hwcc_machine.memsys.backing.read_word_addr(HEAP) == 0
        hwcc_machine.drain_caches()
        assert hwcc_machine.memsys.backing.read_word_addr(HEAP) == 42

    def test_drain_l3_before_l2(self, hwcc_machine):
        """A re-dirtied L2 line must override stale L3 dirty data."""
        machine = hwcc_machine
        machine.clusters[0].store(0, HEAP, 1, 0.0)
        machine.clusters[1].load(0, HEAP, 100.0)   # downgrade: L3 dirty = 1
        machine.clusters[1].store(0, HEAP, 2, 200.0)  # newer value in L2
        machine.drain_caches()
        assert machine.memsys.backing.read_word_addr(HEAP) == 2

    def test_verify_expected_reports_mismatches(self, hwcc_machine):
        hwcc_machine.clusters[0].store(0, HEAP, 42, 0.0)
        ok = hwcc_machine.verify_expected({HEAP: 42})
        assert ok == []
        bad = hwcc_machine.verify_expected({HEAP: 43})
        assert bad == [(HEAP, 43, 42)]

    def test_verify_requires_track_data(self):
        machine = make_machine(Policy.swcc(), track_data=False)
        with pytest.raises(ValueError):
            machine.verify_expected({0: 0})
