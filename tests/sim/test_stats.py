"""RunStats collection and reporting."""

from repro import Policy, get_workload
from repro.sim.stats import RunStats, collect_stats
from repro.types import MessageType, SegmentClass

from tests.conftest import make_machine


class TestRunStats:
    def test_defaults(self):
        stats = RunStats()
        assert stats.total_messages == 0
        assert stats.cycles == 0.0
        assert set(stats.dir_avg_by_class) == set(SegmentClass)
        assert stats.load_mismatches == []

    def test_message_breakdown_covers_all_types(self):
        stats = RunStats()
        assert set(stats.message_breakdown()) == set(MessageType)

    def test_summary_lines_content(self):
        machine = make_machine(Policy.swcc())
        program = get_workload("gjk", scale=0.1).build(machine)
        stats = machine.run(program)
        text = "\n".join(stats.summary_lines())
        assert "cycles:" in text
        assert "total L2->L3 msgs:" in text
        assert "useful WB fraction:" in text  # SWcc issued flushes

    def test_summary_lines_mention_races(self):
        stats = RunStats()
        stats.swcc_races = 2
        assert any("races" in line for line in stats.summary_lines())


class TestCollectStats:
    def test_snapshot_is_independent_of_future_traffic(self):
        machine = make_machine(Policy.hwcc_ideal())
        machine.clusters[0].load(0, 0x2100_0000, 0.0)
        stats = collect_stats(machine, end_time=1000.0)
        first_total = stats.total_messages
        machine.clusters[0].load(0, 0x2100_0040, 100.0)
        assert stats.total_messages == first_total

    def test_directory_occupancy_integrated_to_end_time(self):
        machine = make_machine(Policy.hwcc_ideal())
        machine.clusters[0].load(0, 0x2100_0000, 0.0)
        # one entry allocated near t~50 and held to the end
        stats = collect_stats(machine, end_time=10_000.0)
        assert 0.9 < stats.dir_avg_entries <= 1.0
        assert stats.dir_max_entries == 1

    def test_substrate_counters_populated(self):
        machine = make_machine(Policy.cohesion())
        program = get_workload("mri", scale=0.1).build(machine)
        stats = machine.run(program)
        assert stats.l3_misses > 0
        assert stats.dram_accesses > 0
        assert stats.network_messages > stats.total_messages
        assert stats.fine_table_lookups > 0
        assert stats.barriers == 1

    def test_swcc_machine_has_no_directory_stats(self):
        machine = make_machine(Policy.swcc())
        program = get_workload("mri", scale=0.1).build(machine)
        stats = machine.run(program)
        assert stats.dir_avg_entries == 0.0
        assert stats.dir_max_entries == 0
        assert stats.dir_evictions == 0
