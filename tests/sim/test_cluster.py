"""Cluster cache controller: L1/L2 behaviour under both protocols."""

import pytest

from repro import Policy
from repro.errors import ProtocolError

from tests.conftest import make_machine

COHERENT_HEAP = 0x2000_0000
INCOHERENT_HEAP = 0x4000_0000
CODE = 0x0001_0000


def line_of(addr):
    return addr >> 5


class TestLoads:
    def test_l1_hit_is_one_cycle(self, hwcc_machine):
        cluster = hwcc_machine.clusters[0]
        t1, _ = cluster.load(0, COHERENT_HEAP, 0.0)
        t2, _ = cluster.load(0, COHERENT_HEAP, t1)
        assert t2 - t1 == 1.0

    def test_l2_hit_cheaper_than_miss(self, hwcc_machine):
        cluster = hwcc_machine.clusters[0]
        miss, _ = cluster.load(0, COHERENT_HEAP, 0.0)
        # same line, different core: misses its L1, hits the shared L2
        t0 = miss
        hit, _ = cluster.load(1, COHERENT_HEAP, t0)
        assert hit - t0 < miss - 0.0

    def test_load_fills_l1_and_l2(self, hwcc_machine):
        cluster = hwcc_machine.clusters[0]
        cluster.load(3, COHERENT_HEAP, 0.0)
        line = line_of(COHERENT_HEAP)
        assert cluster.l2.peek(line) is not None
        assert cluster.l1d[3].peek(line) is not None
        assert cluster.l1d[0].peek(line) is None

    def test_load_value_travels(self, hwcc_machine):
        ms = hwcc_machine.memsys
        ms.backing.write_word_addr(COHERENT_HEAP + 8, 31337)
        cluster = hwcc_machine.clusters[0]
        _t, value = cluster.load(0, COHERENT_HEAP + 8, 0.0)
        assert value == 31337

    def test_swcc_partial_line_merges_on_fetch(self, swcc_machine):
        """A write-allocated partial line keeps its dirty words when the
        rest of the line is later fetched for a load."""
        machine = swcc_machine
        ms = machine.memsys
        addr = INCOHERENT_HEAP
        ms.backing.write_word_addr(addr + 4, 400)
        cluster = machine.clusters[0]
        cluster.store(0, addr, 77, 0.0)  # only word 0 valid+dirty
        _t, value = cluster.load(0, addr + 4, 100.0)  # word 1 invalid -> fetch
        assert value == 400
        entry = cluster.l2.peek(line_of(addr))
        assert entry.fully_valid
        assert entry.data[0] == 77       # local dirty word preserved
        assert entry.dirty_mask == 0b1


class TestStores:
    def test_swcc_store_miss_sends_no_message(self, swcc_machine):
        machine = swcc_machine
        before = machine.memsys.counters.total()
        machine.clusters[0].store(0, INCOHERENT_HEAP, 5, 0.0)
        assert machine.memsys.counters.total() == before
        entry = machine.clusters[0].l2.peek(line_of(INCOHERENT_HEAP))
        assert entry.incoherent
        assert entry.valid_mask == 0b1 and entry.dirty_mask == 0b1

    def test_hwcc_store_miss_sends_write_request(self, hwcc_machine):
        machine = hwcc_machine
        machine.clusters[0].store(0, COHERENT_HEAP, 5, 0.0)
        assert machine.memsys.counters.write_request == 1
        entry = machine.clusters[0].l2.peek(line_of(COHERENT_HEAP))
        assert not entry.incoherent and entry.fully_valid

    def test_cohesion_store_miss_to_swcc_line(self, cohesion_machine):
        machine = cohesion_machine
        machine.clusters[0].store(0, INCOHERENT_HEAP, 5, 0.0)
        assert machine.memsys.counters.write_request == 1
        entry = machine.clusters[0].l2.peek(line_of(INCOHERENT_HEAP))
        assert entry.incoherent  # the reply carried the incoherent bit

    def test_store_hit_on_dirty_line_is_local(self, hwcc_machine):
        machine = hwcc_machine
        machine.clusters[0].store(0, COHERENT_HEAP, 5, 0.0)
        before = machine.memsys.counters.total()
        machine.clusters[0].store(0, COHERENT_HEAP + 4, 6, 100.0)
        assert machine.memsys.counters.total() == before

    def test_store_is_posted(self, hwcc_machine):
        """The core pays only issue cost for a store miss."""
        cluster = hwcc_machine.clusters[0]
        t_store = cluster.store(0, COHERENT_HEAP, 5, 0.0)
        t_load, _ = cluster.load(1, COHERENT_HEAP + 0x4000, 0.0)
        assert t_store < t_load  # much cheaper than a blocking miss

    def test_store_updates_own_l1_invalidates_siblings(self, hwcc_machine):
        cluster = hwcc_machine.clusters[0]
        addr = COHERENT_HEAP
        line = line_of(addr)
        cluster.load(0, addr, 0.0)
        cluster.load(1, addr, 10.0)
        assert cluster.l1d[1].peek(line) is not None
        cluster.store(0, addr, 123, 20.0)
        assert cluster.l1d[1].peek(line) is None  # sibling dropped
        _t, value = cluster.load(0, addr, 30.0)
        assert value == 123

    def test_full_write_buffer_stalls(self, hwcc_machine):
        cluster = hwcc_machine.clusters[0]
        t = 0.0
        times = []
        for i in range(cluster.write_buffer_depth + 4):
            t = cluster.store(0, COHERENT_HEAP + 32 * 64 * i, 1, t)
            times.append(t)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert max(gaps[-3:]) > min(gaps[:3])  # later stores stall


class TestInstructionFetch:
    def test_ifetch_through_l1i(self, cohesion_machine):
        cluster = cohesion_machine.clusters[0]
        t1 = cluster.ifetch(0, CODE, 0.0)
        t2 = cluster.ifetch(0, CODE, t1)
        assert t2 - t1 == 1.0
        assert cohesion_machine.memsys.counters.instruction_request == 1

    def test_code_is_incoherent_under_cohesion(self, cohesion_machine):
        cluster = cohesion_machine.clusters[0]
        cluster.ifetch(0, CODE, 0.0)
        assert cluster.l2.peek(line_of(CODE)).incoherent

    def test_code_is_tracked_under_hwcc(self, hwcc_machine):
        cluster = hwcc_machine.clusters[0]
        cluster.ifetch(0, CODE, 0.0)
        line = line_of(CODE)
        assert not cluster.l2.peek(line).incoherent
        assert hwcc_machine.memsys.directory_of(line).get(line) is not None


class TestSoftwareCoherenceOps:
    def test_flush_dirty_line_sends_writeback(self, swcc_machine):
        machine = swcc_machine
        cluster = machine.clusters[0]
        line = line_of(INCOHERENT_HEAP)
        cluster.store(0, INCOHERENT_HEAP, 9, 0.0)
        cluster.flush_line(0, line, 10.0)
        assert machine.memsys.counters.software_flush == 1
        assert machine.memsys.counters.wb_issued == 1
        assert machine.memsys.counters.wb_on_valid == 1
        entry = cluster.l2.peek(line)
        assert entry is not None and not entry.dirty_mask  # cleaned, retained
        # value is globally visible now
        assert machine.memsys.backing is not None
        reply = machine.memsys.read_line(1, line, 100.0)
        assert reply.data[0] == 9

    def test_flush_absent_line_is_wasted(self, swcc_machine):
        machine = swcc_machine
        cluster = machine.clusters[0]
        cluster.flush_line(0, line_of(INCOHERENT_HEAP), 0.0)
        counters = machine.memsys.counters
        assert counters.wb_issued == 1
        assert counters.wb_on_valid == 0
        assert counters.software_flush == 0  # no message either

    def test_flush_clean_line_counts_valid_but_no_message(self, swcc_machine):
        cluster = swcc_machine.clusters[0]
        cluster.load(0, INCOHERENT_HEAP, 0.0)
        cluster.flush_line(0, line_of(INCOHERENT_HEAP), 10.0)
        counters = swcc_machine.memsys.counters
        assert counters.wb_on_valid == 1
        assert counters.software_flush == 0

    def test_invalidate_swcc_line_is_silent(self, swcc_machine):
        machine = swcc_machine
        cluster = machine.clusters[0]
        line = line_of(INCOHERENT_HEAP)
        cluster.load(0, INCOHERENT_HEAP, 0.0)
        before = machine.memsys.counters.total()
        cluster.invalidate_line(0, line, 10.0)
        assert machine.memsys.counters.total() == before
        assert cluster.l2.peek(line) is None
        assert cluster.l1d[0].peek(line) is None
        assert machine.memsys.counters.inv_on_valid == 1

    def test_invalidate_absent_line_is_wasted(self, swcc_machine):
        cluster = swcc_machine.clusters[0]
        cluster.invalidate_line(0, line_of(INCOHERENT_HEAP), 0.0)
        counters = swcc_machine.memsys.counters
        assert counters.inv_issued == 1
        assert counters.inv_on_valid == 0

    def test_invalidate_coherent_clean_sends_release(self, cohesion_machine):
        machine = cohesion_machine
        cluster = machine.clusters[0]
        line = line_of(COHERENT_HEAP)
        cluster.load(0, COHERENT_HEAP, 0.0)
        cluster.invalidate_line(0, line, 10.0)
        assert machine.memsys.counters.read_release == 1
        assert machine.memsys.directory_of(line).get(line) is None


class TestEvictionBehaviour:
    def _stream_lines(self, cluster, base_addr, count, t=0.0, step=64):
        for i in range(count):
            t, _ = cluster.load(0, base_addr + 32 * i, t)
        return t

    def test_swcc_clean_evictions_silent(self, swcc_machine):
        machine = swcc_machine
        cluster = machine.clusters[0]
        capacity = cluster.l2.capacity_lines
        self._stream_lines(cluster, INCOHERENT_HEAP, capacity + 64)
        counters = machine.memsys.counters
        assert cluster.l2.evictions > 0
        assert counters.read_release == 0
        assert counters.cache_eviction == 0

    def test_hwcc_clean_evictions_send_read_releases(self, hwcc_machine):
        machine = hwcc_machine
        cluster = machine.clusters[0]
        capacity = cluster.l2.capacity_lines
        self._stream_lines(cluster, COHERENT_HEAP, capacity + 64)
        assert machine.memsys.counters.read_release >= cluster.l2.evictions > 0

    def test_dirty_eviction_writes_back(self, swcc_machine):
        machine = swcc_machine
        cluster = machine.clusters[0]
        addr = INCOHERENT_HEAP
        cluster.store(0, addr, 424242, 0.0)
        capacity = cluster.l2.capacity_lines
        # stream enough conflicting lines to force the dirty line out
        self._stream_lines(cluster, addr + 32, capacity + 64, t=10.0)
        assert cluster.l2.peek(line_of(addr)) is None
        assert machine.memsys.counters.cache_eviction >= 1
        reply = machine.memsys.read_line(1, line_of(addr), 1e7)
        assert reply.data[0] == 424242


class TestProbes:
    def test_probe_invalidate_returns_dirty_data(self, hwcc_machine):
        cluster = hwcc_machine.clusters[0]
        cluster.store(0, COHERENT_HEAP, 31, 0.0)
        present, mask, values, _done = cluster.probe_invalidate(
            line_of(COHERENT_HEAP), 10.0)
        assert present and mask == 0b1 and values[0] == 31
        assert cluster.l2.peek(line_of(COHERENT_HEAP)) is None

    def test_probe_invalidate_absent(self, hwcc_machine):
        present, mask, values, _done = hwcc_machine.clusters[0].probe_invalidate(
            123456, 0.0)
        assert not present and mask == 0 and values is None

    def test_probe_downgrade_cleans_and_keeps(self, hwcc_machine):
        cluster = hwcc_machine.clusters[0]
        line = line_of(COHERENT_HEAP)
        cluster.store(0, COHERENT_HEAP, 8, 0.0)
        mask, values, _done = cluster.probe_downgrade(line, 10.0)
        assert mask == 0b1 and values[0] == 8
        entry = cluster.l2.peek(line)
        assert entry is not None and not entry.dirty_mask

    def test_probe_downgrade_absent_is_error(self, hwcc_machine):
        with pytest.raises(ProtocolError):
            hwcc_machine.clusters[0].probe_downgrade(999, 0.0)

    def test_probe_clean_query_states(self, cohesion_machine):
        cluster = cohesion_machine.clusters[0]
        addr = INCOHERENT_HEAP
        line = line_of(addr)
        status, _m, _v, _t = cluster.probe_clean_query(line, 0.0)
        assert status == "absent"
        cluster.load(0, addr, 0.0)
        status, _m, _v, _t = cluster.probe_clean_query(line, 10.0)
        assert status == "clean"
        assert not cluster.l2.peek(line).incoherent  # bit cleared
        cluster.l2.peek(line).incoherent = True
        cluster.store(0, addr, 3, 20.0)
        status, mask, values, _t = cluster.probe_clean_query(line, 30.0)
        assert status == "dirty" and mask == 0b1 and values[0] == 3

    def test_probe_make_coherent(self, cohesion_machine):
        cluster = cohesion_machine.clusters[0]
        line = line_of(INCOHERENT_HEAP)
        cluster.store(0, INCOHERENT_HEAP, 1, 0.0)
        cluster.probe_make_coherent(line)
        assert not cluster.l2.peek(line).incoherent
        with pytest.raises(ProtocolError):
            cluster.probe_make_coherent(line + 1000)

    def test_probe_drops_l1_copies(self, hwcc_machine):
        cluster = hwcc_machine.clusters[0]
        addr = COHERENT_HEAP
        line = line_of(addr)
        cluster.load(0, addr, 0.0)
        cluster.load(5, addr, 10.0)
        assert cluster.l1d[5].peek(line) is not None
        cluster.probe_invalidate(line, 20.0)
        assert cluster.l1d[0].peek(line) is None
        assert cluster.l1d[5].peek(line) is None


class TestL1PresentCompaction:
    """``_l1_present`` staleness is bounded: silent L1 evictions leave
    stale members behind, and the threshold compaction sweeps them out
    before the superset can outgrow twice the L1 line capacity."""

    def test_superset_stays_bounded_and_sound(self, hwcc_machine):
        cluster = hwcc_machine.clusters[0]
        bound = cluster._l1_compact_at
        n = bound + 64
        t = 0.0
        for i in range(n):
            t, _ = cluster.load(0, COHERENT_HEAP + 32 * i, t)
        present = cluster._l1_present
        assert len(present) <= bound
        assert len(present) < n
        # Soundness: every line actually resident in an L1 is a member.
        resident = set()
        for cache in list(cluster.l1d) + list(cluster.l1i):
            for bucket in cache.sets:
                resident.update(bucket)
        assert resident <= present

    def test_compaction_shrinks_the_set_after_evictions(self, hwcc_machine):
        cluster = hwcc_machine.clusters[0]
        bound = cluster._l1_compact_at
        # Stream far past core 0's L1D capacity: every fill silently
        # evicts a victim, stranding a stale member per load.
        t = 0.0
        i = 0
        while len(cluster._l1_present) < bound:
            t, _ = cluster.load(0, COHERENT_HEAP + 32 * i, t)
            i += 1
            assert i <= bound + 8, "superset never reached the bound"
        before = len(cluster._l1_present)
        t, _ = cluster.load(0, COHERENT_HEAP + 32 * i, t)
        after = len(cluster._l1_present)
        assert after < before
        # The rebuilt set reflects roughly the true resident lines, not
        # the streamed history.
        capacity = bound // 2
        assert after <= capacity
