"""Protocol invariant checker."""

import pytest

from repro import Policy, get_workload
from repro.debug import InvariantChecker
from repro.mem.address import FULL_WORD_MASK

from tests.conftest import make_machine

HEAP = 0x2000_0000
INC = 0x4000_0000


class TestCleanMachines:
    @pytest.mark.parametrize("label", ["swcc", "hwcc", "cohesion"])
    def test_fresh_machine_clean(self, label):
        policy = {"swcc": Policy.swcc(), "hwcc": Policy.hwcc_ideal(),
                  "cohesion": Policy.cohesion()}[label]
        machine = make_machine(policy)
        assert InvariantChecker(machine).check() == []

    def test_after_real_run_clean(self):
        machine = make_machine(Policy.cohesion())
        program = get_workload("kmeans", scale=0.12).build(machine)
        machine.run(program)
        checker = InvariantChecker(machine)
        assert checker.check() == []
        assert checker.checks_run == 1

    def test_after_mixed_traffic_clean(self):
        machine = make_machine(Policy.hwcc_ideal())
        t = 0.0
        for i in range(32):
            t = machine.clusters[i % 2].store(0, HEAP + 32 * i, i, t)
            t, _ = machine.clusters[(i + 1) % 2].load(0, HEAP + 32 * i, t)
        assert InvariantChecker(machine).check() == []


class TestDetection:
    def test_untracked_coherent_line(self):
        machine = make_machine(Policy.hwcc_ideal())
        machine.clusters[0].l2.allocate(HEAP >> 5)  # injected corruption
        violations = InvariantChecker(machine).check()
        assert any(v.invariant == "directory-inclusion" for v in violations)

    def test_multi_writer_detected(self):
        machine = make_machine(Policy.hwcc_ideal())
        machine.clusters[0].store(0, HEAP, 1, 0.0)
        # corrupt: copy the dirty line into the other cluster's L2
        entry, _ = machine.clusters[1].l2.allocate(
            HEAP >> 5, FULL_WORD_MASK, dirty_mask=0b1)
        violations = InvariantChecker(machine).check()
        kinds = {v.invariant for v in violations}
        assert "single-writer" in kinds or "directory-inclusion" in kinds

    def test_stale_sharer_detected(self):
        machine = make_machine(Policy.hwcc_ideal())
        machine.clusters[0].load(0, HEAP, 0.0)
        machine.clusters[0].l2.remove(HEAP >> 5)  # silent eviction bug
        violations = InvariantChecker(machine).check()
        assert any(v.invariant == "stale-sharer" for v in violations)

    def test_l1_inclusion_violation(self):
        machine = make_machine(Policy.swcc())
        machine.clusters[0].load(0, INC, 0.0)
        machine.clusters[0].l2.remove(INC >> 5)  # L2 dropped, L1 kept
        violations = InvariantChecker(machine).check()
        assert any(v.invariant == "l1-inclusion" for v in violations)

    def test_dirty_but_not_modified(self):
        machine = make_machine(Policy.hwcc_ideal())
        machine.clusters[0].load(0, HEAP, 0.0)     # directory: SHARED
        entry = machine.clusters[0].l2.peek(HEAP >> 5)
        entry.dirty_mask = 0b1                     # dirtied behind its back
        violations = InvariantChecker(machine).check()
        assert any(v.invariant == "single-writer"
                   and "not MODIFIED" in v.detail for v in violations)

    def test_modified_with_extra_sharer(self):
        machine = make_machine(Policy.hwcc_ideal())
        machine.clusters[0].store(0, HEAP, 1, 0.0)  # directory: MODIFIED
        dentry = machine.memsys.directory_of(HEAP >> 5).get(HEAP >> 5)
        dentry.sharers |= 1 << 1                   # phantom second sharer
        violations = InvariantChecker(machine).check()
        kinds = {v.invariant for v in violations}
        assert "single-writer" in kinds and "stale-sharer" in kinds

    def test_incoherent_holder_of_tracked_line(self):
        machine = make_machine(Policy.cohesion())
        machine.clusters[0].load(0, HEAP, 0.0)     # coherent heap line
        entry = machine.clusters[0].l2.peek(HEAP >> 5)
        entry.incoherent = True                    # domain bit corrupted
        violations = InvariantChecker(machine).check()
        kinds = {v.invariant for v in violations}
        assert "stale-sharer" in kinds and "domain-agreement" in kinds

    def test_l1_orphan_after_l2_corruption(self):
        machine = make_machine(Policy.cohesion())
        machine.clusters[0].load(0, HEAP, 0.0)
        machine.clusters[1].load(0, HEAP, 0.0)
        machine.clusters[1].l2.remove(HEAP >> 5)   # drop L2, keep L1
        violations = InvariantChecker(machine).check()
        kinds = {v.invariant for v in violations}
        assert "l1-inclusion" in kinds and "stale-sharer" in kinds

    def test_swcc_purity(self):
        machine = make_machine(Policy.swcc())
        entry, _ = machine.clusters[0].l2.allocate(HEAP >> 5)
        entry.incoherent = False  # impossible on a pure SWcc machine
        violations = InvariantChecker(machine).check()
        assert any(v.invariant == "swcc-purity" for v in violations)

    def test_domain_agreement(self):
        machine = make_machine(Policy.cohesion())
        entry, _ = machine.clusters[0].l2.allocate(HEAP >> 5,
                                                   incoherent=True)
        violations = InvariantChecker(machine).check()
        assert any(v.invariant == "domain-agreement" for v in violations)


class TestReporting:
    def test_assert_ok_raises_with_summary(self):
        machine = make_machine(Policy.hwcc_ideal())
        machine.clusters[0].l2.allocate(HEAP >> 5)
        checker = InvariantChecker(machine)
        with pytest.raises(AssertionError, match="directory-inclusion"):
            checker.assert_ok()

    def test_violations_accumulate(self):
        machine = make_machine(Policy.hwcc_ideal())
        machine.clusters[0].l2.allocate(HEAP >> 5)
        checker = InvariantChecker(machine)
        checker.check()
        checker.check()
        assert checker.checks_run == 2
        assert len(checker.all_violations) >= 2

    def test_usable_as_phase_hook(self):
        from repro.runtime.program import Phase, Program, Task
        from repro.types import OP_LOAD

        machine = make_machine(Policy.cohesion())
        checker = InvariantChecker(machine)
        program = Program("p", [Phase("x", [
            Task(ops=[(OP_LOAD, HEAP)], stack_words=0)],
            code_lines=0, after=checker.on_barrier)])
        machine.run(program)  # does not raise
        assert checker.checks_run == 1

    def test_violation_str(self):
        from repro.debug.checker import Violation
        text = str(Violation("single-writer", 0x40, "cluster 1", "oops"))
        assert "single-writer" in text and "0x40" in text
