"""Line tracer."""

import pytest

from repro import Policy, get_workload
from repro.debug import LineTracer, TraceEvent

from tests.conftest import make_machine

HEAP = 0x2000_0000
INC = 0x4000_0000


@pytest.fixture
def machine():
    return make_machine(Policy.cohesion())


class TestRecording:
    def test_load_store_recorded(self, machine):
        line = HEAP >> 5
        with LineTracer(watch={line}).attach(machine) as tracer:
            machine.clusters[0].store(2, HEAP, 42, 0.0)
            machine.clusters[1].load(3, HEAP + 4, 100.0)
        kinds = [e.kind for e in tracer.events]
        # the cross-cluster load triggers (and the tracer captures) the
        # M -> S downgrade probe to the owner
        assert kinds == ["store", "probe_down", "load"]
        store = tracer.events[0]
        assert store.cluster == 0 and store.core == 2
        assert store.value == 42 and store.addr == HEAP

    def test_unwatched_lines_ignored(self, machine):
        with LineTracer(watch={123}).attach(machine) as tracer:
            machine.clusters[0].load(0, HEAP, 0.0)
        assert len(tracer) == 0

    def test_watch_all_mode(self, machine):
        with LineTracer().attach(machine) as tracer:
            machine.clusters[0].load(0, HEAP, 0.0)
            machine.clusters[0].load(0, INC, 10.0)
        assert len(tracer) == 2

    def test_watch_region(self, machine):
        tracer = LineTracer(watch=set())
        tracer.watch_region(HEAP, 128)
        assert (HEAP >> 5) in tracer.watch
        assert (HEAP + 127) >> 5 in tracer.watch

    def test_flush_and_inv_recorded(self, machine):
        line = INC >> 5
        with LineTracer(watch={line}).attach(machine) as tracer:
            machine.clusters[0].store(0, INC, 1, 0.0)
            machine.clusters[0].flush_line(0, line, 10.0)
            machine.clusters[0].invalidate_line(0, line, 20.0)
        kinds = [e.kind for e in tracer.events]
        assert kinds == ["store", "flush", "inv"]

    def test_probes_recorded(self, machine):
        line = HEAP >> 5
        machine.clusters[0].store(0, HEAP, 5, 0.0)
        with LineTracer(watch={line}).attach(machine) as tracer:
            machine.clusters[1].load(0, HEAP, 100.0)  # downgrades owner
        kinds = {e.kind for e in tracer.events}
        assert "probe_down" in kinds and "load" in kinds

    def test_transitions_recorded(self, machine):
        line = INC >> 5
        with LineTracer(watch={line}).attach(machine) as tracer:
            machine.api.coh_HWcc_region(INC, 32)
        assert [e.kind for e in tracer.events] == ["to_hwcc"]

    def test_atomic_recorded_with_old_value(self, machine):
        line = HEAP >> 5
        machine.memsys.backing.write_word_addr(HEAP, 7)
        with LineTracer(watch={line}).attach(machine) as tracer:
            machine.clusters[0].atomic(0, HEAP, lambda a, b: a + b, 3, 0.0)
        assert tracer.events[0].kind == "atomic"
        assert tracer.events[0].value == 7


class TestLifecycle:
    def test_detach_restores_behaviour(self, machine):
        tracer = LineTracer().attach(machine)
        tracer.detach()
        machine.clusters[0].load(0, HEAP, 0.0)
        assert len(tracer) == 0

    def test_double_attach_rejected(self, machine):
        tracer = LineTracer().attach(machine)
        with pytest.raises(RuntimeError):
            tracer.attach(machine)
        tracer.detach()

    def test_detach_idempotent(self, machine):
        tracer = LineTracer().attach(machine)
        tracer.detach()
        tracer.detach()  # second detach is a no-op, not an error
        assert machine.obs.active is False

    def test_detach_without_attach_is_noop(self, machine):
        LineTracer().detach()

    def test_reattach_after_detach(self, machine):
        tracer = LineTracer().attach(machine)
        tracer.detach()
        tracer.attach(machine)  # legal again once detached
        machine.clusters[0].load(0, HEAP, 0.0)
        tracer.detach()
        assert len(tracer) == 1

    def test_detach_leaves_other_subscribers(self, machine):
        first = LineTracer().attach(machine)
        second = LineTracer().attach(machine)
        first.detach()
        machine.clusters[0].load(0, HEAP, 0.0)
        second.detach()
        assert len(first) == 0
        assert len(second) == 1

    def test_max_events_drops(self, machine):
        with LineTracer(max_events=3).attach(machine) as tracer:
            for i in range(6):
                machine.clusters[0].load(0, HEAP + 64 * i, 10.0 * i)
        assert len(tracer) == 3
        assert tracer.dropped == 3
        assert "dropped" in tracer.format()

    def test_full_run_traceable(self, machine):
        program = get_workload("gjk", scale=0.1).build(machine)
        with LineTracer().attach(machine) as tracer:
            stats = machine.run(program)
        assert stats.load_mismatches == []
        assert len(tracer) > 100


class TestFormatting:
    def test_format_is_chronological(self, machine):
        with LineTracer().attach(machine) as tracer:
            machine.clusters[0].load(0, HEAP, 500.0)
            machine.clusters[0].load(0, HEAP + 64, 100.0)
        lines = tracer.format().splitlines()
        assert "100.0" in lines[0] and "500.0" in lines[1]

    def test_events_for_filters(self, machine):
        with LineTracer().attach(machine) as tracer:
            machine.clusters[0].load(0, HEAP, 0.0)
            machine.clusters[0].load(0, HEAP + 64, 1.0)
        assert len(tracer.events_for(HEAP >> 5)) == 1

    def test_event_str(self):
        event = TraceEvent(12.5, "store", 1, 3, 0x100, addr=0x2000,
                           value=9, detail="x")
        text = str(event)
        assert "store" in text and "cluster 1.3" in text and "value=9" in text
