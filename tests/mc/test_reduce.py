"""Reduction engine: symmetry, sleep sets, parallelism, spill, the gate."""

import pytest

from repro.mc import (PRESETS, LineSpec, ModelConfig, build_machine,
                      equality_gate, explore, line_symmetry,
                      reduction_context, verify_independence)
from repro.mc.presets import INCOHERENT_HEAP


def two_line_model(n_lines=2, actions=("load", "store"), cap=200_000):
    lines = tuple(LineSpec.at(INCOHERENT_HEAP + 0x20 * i, actions=actions)
                  for i in range(n_lines))
    return ModelConfig(name=f"sym{n_lines}", description="reduction test",
                       n_clusters=2, lines=lines, max_states=cap)


class TestLineSymmetry:
    def test_single_line_has_identity_only(self):
        model = PRESETS["smoke"]
        perms = line_symmetry(model, build_machine(model))
        assert perms == ((0,),)

    def test_interchangeable_lines_swap(self):
        model = two_line_model()
        perms = line_symmetry(model, build_machine(model))
        assert perms == ((0, 1), (1, 0))

    def test_differing_alphabets_break_symmetry(self):
        model = ModelConfig(
            name="asym", description="x", n_clusters=2,
            lines=(LineSpec.at(INCOHERENT_HEAP, actions=("load", "store")),
                   LineSpec.at(INCOHERENT_HEAP + 0x20, actions=("load",))))
        perms = line_symmetry(model, build_machine(model))
        assert perms == ((0, 1),)

    def test_default_preset_mixed_domains_stay_fixed(self):
        model = PRESETS["default"]
        perms = line_symmetry(model, build_machine(model))
        assert perms == ((0, 1),)


class TestSleepMapping:
    def test_action_mapping_round_trips(self):
        ctx = reduction_context(two_line_model())
        for lam in ctx.line_perms:
            for order in ctx.cluster_orders:
                perm = (order, lam)
                for cand in ctx.candidates:
                    canon = ctx.to_canonical_action(cand.index, perm)
                    assert ctx.to_concrete_action(canon, perm) == cand.index

    def test_successor_sleep_is_monotone(self):
        ctx = reduction_context(two_line_model())
        everything = frozenset(c.index for c in ctx.candidates)
        for cand in ctx.candidates:
            inherited = ctx.successor_sleep(cand.index, everything)
            assert inherited <= everything
            assert cand.index not in inherited  # never independent of self


class TestIndependenceVerification:
    def test_smoke_declarations_hold(self):
        assert verify_independence(PRESETS["smoke"]) == []

    def test_symmetric_model_declarations_hold(self):
        assert verify_independence(two_line_model(), max_states=250) == []


class TestReducedExploration:
    def test_orbit_accounting_is_exact(self):
        model = two_line_model()
        unreduced = explore(model)
        reduced = explore(model, reduce=True)
        assert unreduced.ok and reduced.ok
        assert unreduced.exhaustive and reduced.exhaustive
        assert reduced.represented_states == unreduced.states
        assert reduced.states < unreduced.states
        assert reduced.reduction_factor > 1.5
        assert reduced.transitions < unreduced.transitions

    def test_equality_gate_smoke(self):
        report = equality_gate(PRESETS["smoke"])
        assert report["ok"], report["checks"]
        assert all(report["checks"].values())

    def test_reduced_fields_in_dict(self):
        result = explore(PRESETS["smoke"], reduce=True)
        payload = result.as_dict()
        assert payload["reduced"] is True
        assert payload["represented_states"] == result.states
        assert payload["reduction_factor"] == 1.0
        assert "sleep_pruned" in payload

    def test_levels_trajectory_recorded(self):
        result = explore(PRESETS["smoke"])
        assert result.levels
        assert result.levels[0]["depth"] == 0
        assert result.levels[-1]["states"] == result.states
        assert [lv["depth"] for lv in result.levels] == \
               list(range(len(result.levels)))


class TestParallelAndSpill:
    def test_two_workers_match_serial(self):
        serial = explore(PRESETS["smoke"])
        parallel = explore(PRESETS["smoke"], jobs=2)
        assert (serial.states, serial.transitions, serial.races) == \
               (parallel.states, parallel.transitions, parallel.races)

    def test_spill_always_matches_in_memory(self):
        plain = explore(PRESETS["smoke"], reduce=True)
        spilled = explore(PRESETS["smoke"], reduce=True, spill="always")
        assert (plain.states, plain.transitions) == \
               (spilled.states, spilled.transitions)
        assert spilled.spill_segments > 0

    def test_bad_spill_mode_rejected(self):
        with pytest.raises(ValueError):
            explore(PRESETS["smoke"], spill="sometimes")

    def test_parallel_reduced_mutation_still_caught(self):
        result = explore(PRESETS["smoke"], mutation="skip-2a-invalidate",
                         reduce=True, jobs=2, max_states=20_000)
        assert not result.ok
        assert result.trace
