"""Exploration: exhaustiveness, determinism, caps, action enumeration."""

from repro.mc import PRESETS, build_machine, enumerate_actions, explore
from repro.mc.state import SpecState


class TestSmokeExploration:
    def test_smoke_is_clean_and_exhaustive(self):
        result = explore(PRESETS["smoke"])
        assert result.ok
        assert result.exhaustive
        assert result.truncated_by is None
        assert result.trace is None
        assert result.states > 100          # known universe size: 137
        assert result.races > 0             # Case 5b does arise and is legal

    def test_deterministic(self):
        a = explore(PRESETS["smoke"])
        b = explore(PRESETS["smoke"])
        assert (a.states, a.transitions, a.races) == \
               (b.states, b.transitions, b.races)

    def test_state_cap_truncates(self):
        result = explore(PRESETS["smoke"], max_states=20)
        assert result.truncated_by == "max-states"
        assert not result.exhaustive
        assert result.ok                    # truncated, but nothing broke

    def test_depth_cap_truncates(self):
        result = explore(PRESETS["smoke"], max_depth=2)
        assert result.truncated_by == "max-depth"
        assert not result.exhaustive

    def test_progress_callback_fires(self):
        calls = []
        explore(PRESETS["smoke"],
                progress=lambda s, t: calls.append((s, t)),
                progress_every=50)
        assert calls
        assert all(s <= t for s, t in calls)

    def test_as_dict_is_json_shaped(self):
        import json
        result = explore(PRESETS["smoke"], max_states=50)
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["preset"] == "smoke"
        assert payload["ok"] is True
        assert payload["states"] == result.states


class TestActionEnumeration:
    def test_initial_actions(self):
        model = PRESETS["smoke"]
        machine = build_machine(model)
        actions = list(enumerate_actions(machine, model))
        kinds = {a.kind for a in actions}
        # Nothing is resident yet, so residency-gated ops are absent...
        assert not kinds & {"wb", "inv", "evict"}
        # ...and the line starts SWcc, so only the HWcc transition is on.
        assert "to_hwcc" in kinds and "to_swcc" not in kinds
        assert {"load", "store", "atomic"} <= kinds

    def test_atomic_symmetric_initiator(self):
        model = PRESETS["smoke"]
        machine = build_machine(model)
        atomics = [a for a in enumerate_actions(machine, model)
                   if a.kind == "atomic"]
        assert {a.cluster for a in atomics} == {0}

    def test_load_store_per_cluster(self):
        model = PRESETS["smoke"]
        machine = build_machine(model)
        loads = [a for a in enumerate_actions(machine, model)
                 if a.kind == "load"]
        assert {a.cluster for a in loads} == {0, 1}


class TestDirectoryPressure:
    def test_direvict_clean_under_cap(self):
        result = explore(PRESETS["direvict"], max_states=3000)
        assert result.ok

    def test_broken_root_is_reported(self):
        model = PRESETS["smoke"]
        machine = build_machine(model)
        # Corrupt the initial state: a coherent L2 line with no directory
        # entry violates inclusion before any action runs.
        machine.clusters[0].l2.allocate(model.lines[0].line)
        result = explore(model, machine=machine)
        assert not result.ok
        assert result.trace == []


def test_spec_gc_drops_settled_entries():
    model = PRESETS["smoke"]
    machine = build_machine(model)
    spec = SpecState()
    spec.stale.add((0, model.word_addrs()[0]))  # no such copy exists
    spec.gc(machine)
    assert spec.stale == set()
