"""Static footprint table and per-model footprint contexts."""

from repro.mc import (ACTION_KINDS, FOOTPRINTS, PRESETS, Action, LineSpec,
                      ModelConfig, build_context, build_machine)
from repro.mc.presets import COHERENT_HEAP, INCOHERENT_HEAP


def model_with(lines, name="fp-test", n_clusters=2, **kw):
    return ModelConfig(name=name, description="footprint test",
                       n_clusters=n_clusters, lines=tuple(lines), **kw)


class TestTable:
    def test_every_action_kind_declared(self):
        assert set(FOOTPRINTS) == set(ACTION_KINDS)

    def test_only_core_ops_touch_lru(self):
        bumping = {k for k, fp in FOOTPRINTS.items() if fp.touches_lru}
        assert bumping == {"load", "store"}


class TestContext:
    def test_smoke_line_is_dir_capable(self):
        # Boots SWcc, but "to_hwcc" is in its alphabet: it can reach
        # the directory, so the dir token must be emitted.
        model = PRESETS["smoke"]
        fp = build_context(model, build_machine(model))
        assert fp.dir_capable == (True,)
        load = Action("load", 0, model.lines[0].line, 0)
        assert ("dir", fp.dir_bank[0]) in fp.footprint(load)

    def test_swcc_pinned_line_never_reaches_directory(self):
        model = model_with([
            LineSpec.at(INCOHERENT_HEAP, actions=("load", "store"))])
        fp = build_context(model, build_machine(model))
        assert fp.dir_capable == (False,)
        store = Action("store", 1, model.lines[0].line, 0)
        assert not any(c[0] == "dir" for c in fp.footprint(store))

    def test_hwcc_boot_line_is_dir_capable(self):
        model = model_with([
            LineSpec.at(COHERENT_HEAP, actions=("load", "store"))])
        fp = build_context(model, build_machine(model))
        assert fp.dir_capable == (True,)

    def test_lru_token_only_for_core_ops(self):
        model = PRESETS["smoke"]
        fp = build_context(model, build_machine(model))
        line = model.lines[0].line
        assert ("lru", 1) in fp.footprint(Action("load", 1, line, 0))
        assert ("lru", 0) in fp.footprint(Action("store", 0, line, 0))
        assert not any(c[0] == "lru"
                       for c in fp.footprint(Action("atomic", 0, line, 0)))
        assert not any(c[0] == "lru"
                       for c in fp.footprint(Action("wb", 0, line, -1)))


class TestIndependence:
    def two_line_model(self):
        return model_with([
            LineSpec.at(INCOHERENT_HEAP, actions=("load", "store")),
            LineSpec.at(INCOHERENT_HEAP + 0x20, actions=("load", "store")),
        ])

    def test_disjoint_lines_different_clusters_independent(self):
        model = self.two_line_model()
        fp = build_context(model, build_machine(model))
        a = Action("load", 0, model.lines[0].line, 0)
        b = Action("store", 1, model.lines[1].line, 0)
        assert fp.independent(a, b)

    def test_same_line_always_dependent(self):
        model = self.two_line_model()
        fp = build_context(model, build_machine(model))
        line = model.lines[0].line
        assert not fp.independent(Action("load", 0, line, 0),
                                  Action("store", 1, line, 0))

    def test_same_cluster_core_ops_share_lru(self):
        # Different lines, but the same initiator: both bump that
        # cluster's recency order, so they must not be declared
        # independent.
        model = self.two_line_model()
        fp = build_context(model, build_machine(model))
        a = Action("load", 0, model.lines[0].line, 0)
        b = Action("load", 0, model.lines[1].line, 0)
        assert not fp.independent(a, b)

    def test_dir_capable_lines_share_their_bank(self):
        model = model_with([
            LineSpec.at(COHERENT_HEAP, actions=("load", "store")),
            LineSpec.at(COHERENT_HEAP + 0x20, actions=("load", "store")),
        ])
        fp = build_context(model, build_machine(model))
        if fp.dir_bank[0] == fp.dir_bank[1]:
            a = Action("load", 0, model.lines[0].line, 0)
            b = Action("load", 1, model.lines[1].line, 0)
            assert not fp.independent(a, b)


class TestAliasFusion:
    def test_colliding_lines_fused_into_one_class(self):
        base = PRESETS["smoke"]
        machine = build_machine(base)
        l2 = machine.clusters[0].l2
        line0 = base.lines[0].line
        alias = next(line0 + k for k in range(1, 1 << 16)
                     if l2.set_index(line0 + k) == l2.set_index(line0))
        from repro.mem.address import line_base
        model = model_with([
            LineSpec.at(line_base(line0), actions=("load", "store")),
            LineSpec.at(line_base(alias), actions=("load", "store")),
        ])
        fp = build_context(model, build_machine(model))
        assert fp.line_class[0] == fp.line_class[1]

    def test_adjacent_lines_stay_separate(self):
        model = model_with([
            LineSpec.at(INCOHERENT_HEAP, actions=("load", "store")),
            LineSpec.at(INCOHERENT_HEAP + 0x20, actions=("load", "store")),
        ])
        fp = build_context(model, build_machine(model))
        assert fp.line_class[0] != fp.line_class[1]
