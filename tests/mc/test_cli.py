"""The ``repro mc`` subcommand: output, exit codes, trace round-trip."""

import json

from repro.cli import main


class TestListing:
    def test_list_presets(self, capsys):
        assert main(["mc", "--list-presets"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "default" in out

    def test_list_mutations(self, capsys):
        assert main(["mc", "--list-mutations"]) == 0
        out = capsys.readouterr().out
        assert "skip-merge-writeback" in out


class TestExploreCommand:
    def test_smoke_clean_exit_zero(self, capsys):
        assert main(["mc", "--preset", "smoke", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "exploration is exhaustive" in out
        assert "all invariants hold" in out

    def test_json_output(self, capsys):
        assert main(["mc", "--preset", "smoke", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["exhaustive"] is True
        assert payload["states"] > 100

    def test_unknown_preset_exit_two(self, capsys):
        assert main(["mc", "--preset", "bogus"]) == 2
        assert "unknown preset" in capsys.readouterr().err

    def test_unknown_mutation_exit_two(self, capsys):
        assert main(["mc", "--preset", "smoke", "--mutate", "bogus"]) == 2
        assert "unknown mutation" in capsys.readouterr().err

    def test_summary_row(self, capsys, tmp_path):
        summary = tmp_path / "summary.md"
        assert main(["mc", "--preset", "smoke", "--quiet",
                     "--summary", str(summary)]) == 0
        row = summary.read_text()
        assert "`smoke`" in row and "exhaustive" in row and "clean" in row


class TestReductionFlags:
    def test_reduction_line_printed_by_default(self, capsys):
        assert main(["mc", "--preset", "smoke", "--quiet"]) == 0
        assert "reduction:" in capsys.readouterr().out

    def test_no_reduce_restores_plain_output(self, capsys):
        assert main(["mc", "--preset", "smoke", "--quiet",
                     "--no-reduce"]) == 0
        assert "reduction:" not in capsys.readouterr().out

    def test_equality_gate_smoke_exit_zero(self, capsys):
        assert main(["mc", "--preset", "smoke", "--quiet",
                     "--equality-gate"]) == 0
        out = capsys.readouterr().out
        assert "equality gate" in out
        assert "orbits" in out and "FAIL" not in out

    def test_equality_gate_json(self, capsys):
        assert main(["mc", "--preset", "smoke", "--quiet",
                     "--equality-gate", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert set(payload["checks"]) == \
            {"verdict", "violations", "coverage", "orbits"}

    def test_out_writes_trajectory(self, capsys, tmp_path):
        assert main(["mc", "--preset", "smoke", "--quiet",
                     "--out", str(tmp_path)]) == 0
        [path] = tmp_path.glob("MC_*.json")
        payload = json.loads(path.read_text())
        assert payload["result"]["preset"] == "smoke"
        assert payload["levels"][0]["depth"] == 0
        assert payload["levels"][-1]["states"] == \
            payload["result"]["states"]


class TestMutationFlow:
    def test_mutation_caught_exit_one(self, capsys):
        code = main(["mc", "--preset", "smoke", "--quiet",
                     "--mutate", "keep-incoherent-bit"])
        out = capsys.readouterr().out
        assert code == 1
        assert "INVARIANT VIOLATION" in out
        assert "counterexample" in out

    def test_trace_out_and_replay(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        assert main(["mc", "--preset", "smoke", "--quiet",
                     "--mutate", "keep-incoherent-bit",
                     "--trace-out", str(trace)]) == 1
        capsys.readouterr()
        assert main(["mc", "--replay", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "reproduced" in out

    def test_replay_missing_file_exit_two(self, capsys):
        assert main(["mc", "--replay", "/nonexistent/trace.json"]) == 2

    def test_replay_json(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        main(["mc", "--preset", "smoke", "--quiet",
              "--mutate", "skip-merge-writeback",
              "--trace-out", str(trace)])
        capsys.readouterr()
        assert main(["mc", "--replay", str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reproduced"] is True
        assert payload["mutation"] == "skip-merge-writeback"
