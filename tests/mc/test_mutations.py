"""Every registered bug injection must be caught with a short trace."""

import pytest

from repro.mc import MUTATIONS, PRESETS, apply_mutation, build_machine, explore


def preset_for(name: str) -> str:
    # The sparse-conflict bug only fires under directory pressure.
    return "direvict" if name == "ignore-sparse-conflict" else "smoke"


class TestMutationRegistry:
    def test_all_have_expectations(self):
        for mutation in MUTATIONS.values():
            assert mutation.expect
            assert mutation.description

    def test_unknown_rejected(self):
        machine = build_machine(PRESETS["smoke"])
        with pytest.raises(KeyError):
            apply_mutation("no-such-bug", machine)


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_mutation_is_caught(name):
    mutation = MUTATIONS[name]
    result = explore(PRESETS[preset_for(name)], mutation=name,
                     max_states=20_000)
    assert not result.ok, f"{name} survived exploration undetected"
    assert result.trace is not None
    assert len(result.trace) <= 10
    assert any(mutation.expect in v for v in result.violations), \
        f"{name}: expected a {mutation.expect!r} violation, " \
        f"got {result.violations}"


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_counterexample_replays(name, tmp_path):
    from repro.mc.trace import load_trace, replay, write_trace

    result = explore(PRESETS[preset_for(name)], mutation=name,
                     max_states=20_000)
    path = tmp_path / "trace.json"
    write_trace(str(path), result)
    outcome = replay(load_trace(str(path)))
    assert outcome["reproduced"]
    assert outcome["failing_step"] == len(result.trace)


def test_unmutated_machine_stays_clean():
    """The flip side: the real protocol passes the same universes."""
    result = explore(PRESETS["smoke"])
    assert result.ok and result.exhaustive


def test_trace_format_rejects_other_json(tmp_path):
    from repro.mc.trace import load_trace

    path = tmp_path / "other.json"
    path.write_text('{"format": "something-else"}')
    with pytest.raises(ValueError):
        load_trace(str(path))
