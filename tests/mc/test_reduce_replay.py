"""Counterexamples found *under reduction* replay on the plain machinery.

The reduction must not cost the checker its bug-finding teeth, and the
traces it emits must be concrete action sequences -- not canonical-frame
artifacts -- so the unreduced replayer reproduces them step for step.
"""

import pytest

from repro.mc import MUTATIONS, PRESETS, explore
from repro.mc.trace import load_trace, replay, write_trace


def preset_for(name: str) -> str:
    # The sparse-conflict bug only fires under directory pressure.
    return "direvict" if name == "ignore-sparse-conflict" else "smoke"


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_reduced_exploration_catches_and_replays(name, tmp_path):
    mutation = MUTATIONS[name]
    result = explore(PRESETS[preset_for(name)], mutation=name,
                     reduce=True, max_states=20_000)
    assert not result.ok, f"{name} survived reduced exploration"
    assert result.trace is not None
    assert len(result.trace) <= 4
    assert any(mutation.expect in v for v in result.violations)

    path = tmp_path / "trace.json"
    write_trace(str(path), result)
    outcome = replay(load_trace(str(path)))
    assert outcome["reproduced"]
    assert outcome["failing_step"] == len(result.trace)


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_reduced_trace_no_longer_than_unreduced(name):
    preset = PRESETS[preset_for(name)]
    reduced = explore(preset, mutation=name, reduce=True, max_states=20_000)
    unreduced = explore(preset, mutation=name, max_states=20_000)
    assert len(reduced.trace) <= len(unreduced.trace)


def test_parallel_reduced_counterexample_replays(tmp_path):
    result = explore(PRESETS["smoke"], mutation="skip-merge-writeback",
                     reduce=True, jobs=2, max_states=20_000)
    assert not result.ok
    path = tmp_path / "trace.json"
    write_trace(str(path), result)
    assert replay(load_trace(str(path)))["reproduced"]
