"""Canonical keys: symmetry reduction, renaming, snapshot stability."""

from repro.mc import (Action, PRESETS, SpecState, apply_action, build_machine,
                      canonical_key)
from repro.mc.presets import INCOHERENT_HEAP
from repro.mc.state import extract_state, semi_key


def fresh(preset="smoke"):
    model = PRESETS[preset]
    return model, build_machine(model), SpecState()


def run(machine, model, spec, actions):
    for action in actions:
        apply_action(machine, model, spec, action)
        machine.restore(machine.snapshot())


class TestCanonicalKey:
    def test_snapshot_restore_round_trip(self):
        model, machine, spec = fresh()
        line = model.lines[0].line
        run(machine, model, spec, [
            Action("store", 0, line, 0),
            Action("load", 1, line, 0),
        ])
        key = canonical_key(machine, model, spec)
        msnap, ssnap = machine.snapshot(), spec.snapshot()
        run(machine, model, spec, [Action("store", 1, line, 0)])
        machine.restore(msnap)
        spec.restore(ssnap)
        assert canonical_key(machine, model, spec) == key

    def test_cluster_symmetry(self):
        """Mirrored interleavings collapse onto one canonical state."""
        model, m1, s1 = fresh()
        _, m2, s2 = fresh()
        line = model.lines[0].line
        run(m1, model, s1, [Action("store", 0, line, 0),
                            Action("load", 1, line, 0)])
        run(m2, model, s2, [Action("store", 1, line, 0),
                            Action("load", 0, line, 0)])
        assert canonical_key(m1, model, s1) == canonical_key(m2, model, s2)
        # ...even though the concrete (identity-order) states differ.
        assert (semi_key(extract_state(m1, model, s1))
                != semi_key(extract_state(m2, model, s2)))

    def test_value_renaming(self):
        """Write counters are opaque: burning extra counters on a word
        that ends in the same abstract shape does not split the state."""
        model, m1, s1 = fresh()
        _, m2, s2 = fresh()
        line = model.lines[0].line
        run(m1, model, s1, [Action("store", 0, line, 0)])
        run(m2, model, s2, [Action("store", 0, line, 0),
                            Action("store", 0, line, 0)])
        assert canonical_key(m1, model, s1) == canonical_key(m2, model, s2)

    def test_distinct_states_distinct_keys(self):
        model, m1, s1 = fresh()
        _, m2, s2 = fresh()
        line = model.lines[0].line
        run(m1, model, s1, [Action("store", 0, line, 0)])
        run(m2, model, s2, [Action("load", 0, line, 0)])
        assert canonical_key(m1, model, s1) != canonical_key(m2, model, s2)

    def test_domain_transition_changes_key(self):
        model, machine, spec = fresh()
        line = model.lines[0].line
        before = canonical_key(machine, model, spec)
        run(machine, model, spec, [Action("to_hwcc", 0, line, 0)])
        assert canonical_key(machine, model, spec) != before


class TestSpecState:
    def test_fresh_values_never_repeat(self):
        spec = SpecState()
        values = {spec.fresh() for _ in range(100)}
        assert len(values) == 100

    def test_expected_defaults_to_zero(self):
        assert SpecState().expected(INCOHERENT_HEAP) == 0

    def test_snapshot_isolates(self):
        spec = SpecState()
        snap = spec.snapshot()
        spec.mem[INCOHERENT_HEAP] = spec.fresh()
        spec.stale.add((0, INCOHERENT_HEAP))
        spec.restore(snap)
        assert spec.mem == {}
        assert spec.stale == set()
