"""SingleFlight: one computation per key, however many concurrent callers."""

import asyncio

import pytest

from repro.serve.singleflight import SingleFlight

from tests.serve.conftest import run


class TestCoalescing:
    def test_concurrent_same_key_runs_thunk_once(self):
        flights = SingleFlight()
        runs = []

        async def thunk():
            runs.append(1)
            await asyncio.sleep(0.02)
            return "value"

        async def body():
            return await asyncio.gather(
                *(flights.run("k", thunk) for _ in range(5)))

        outcomes = run(body())
        assert len(runs) == 1
        assert sum(1 for led, _ in outcomes if led) == 1
        assert all(value == "value" for _, value in outcomes)
        assert flights.led == 1 and flights.coalesced == 4

    def test_different_keys_do_not_coalesce(self):
        flights = SingleFlight()
        runs = []

        def thunk_for(key):
            async def thunk():
                runs.append(key)
                await asyncio.sleep(0.01)
                return key
            return thunk

        async def body():
            return await asyncio.gather(flights.run("a", thunk_for("a")),
                                        flights.run("b", thunk_for("b")))

        outcomes = run(body())
        assert sorted(runs) == ["a", "b"]
        assert [led for led, _ in outcomes] == [True, True]

    def test_sequential_calls_each_lead(self):
        flights = SingleFlight()
        runs = []

        async def thunk():
            runs.append(1)
            return len(runs)

        async def body():
            first = await flights.run("k", thunk)
            second = await flights.run("k", thunk)
            return first, second

        (led1, v1), (led2, v2) = run(body())
        assert (led1, v1) == (True, 1)
        assert (led2, v2) == (True, 2), "key not cleared after completion"
        assert len(flights) == 0

    def test_key_cleared_even_on_failure(self):
        flights = SingleFlight()

        async def boom():
            raise ValueError("no")

        async def body():
            with pytest.raises(ValueError):
                await flights.run("k", boom)
            return len(flights)

        assert run(body()) == 0


class TestFailurePropagation:
    def test_followers_see_the_leaders_exception(self):
        flights = SingleFlight()
        runs = []

        async def boom():
            runs.append(1)
            await asyncio.sleep(0.02)
            raise RuntimeError("leader failed")

        async def one():
            try:
                await flights.run("k", boom)
                return "ok"
            except RuntimeError as err:
                return str(err)

        async def body():
            return await asyncio.gather(*(one() for _ in range(3)))

        assert run(body()) == ["leader failed"] * 3
        assert len(runs) == 1

    def test_cancelled_follower_does_not_kill_the_flight(self):
        flights = SingleFlight()

        async def slow():
            await asyncio.sleep(0.05)
            return "done"

        async def body():
            leader = asyncio.ensure_future(flights.run("k", slow))
            await asyncio.sleep(0)
            cancelled = asyncio.ensure_future(flights.run("k", slow))
            survivor = asyncio.ensure_future(flights.run("k", slow))
            await asyncio.sleep(0.01)
            cancelled.cancel()
            led, value = await leader
            _led2, value2 = await survivor
            return led, value, value2

        assert run(body()) == (True, "done", "done")
