"""JobManager: coalescing, admission, timeout/retry, drain -- no HTTP.

A fake runner stands in for the process pool so each path is exercised
deterministically (and fast); tests/serve/test_server.py runs the real
pool end to end.
"""

import asyncio

import pytest

from repro import Policy
from repro.analysis.parallel import Cell
from repro.cache import ResultCache
from repro.serve.config import ServeConfig
from repro.serve.jobs import (Draining, JobFailed, JobManager, JobTimeout,
                              Overloaded, PoolBroken)

from tests.serve.conftest import run


def _cell(label="gjk", **extra):
    from repro.analysis.experiments import ExperimentConfig

    exp = ExperimentConfig(n_clusters=2, scale=0.12)
    return Cell.make("gjk", Policy.swcc(), exp, label=label, **extra)


def _config(**overrides):
    base = dict(port=0, jobs=1, queue_limit=64, timeout_s=5.0,
                retries=2, backoff_s=0.001, drain_s=5.0)
    base.update(overrides)
    return ServeConfig(**base)


class FakeRunner:
    """Scriptable PoolRunner stand-in: counts runs, optionally blocks,
    breaks, or raises."""

    def __init__(self, result="stats", delay_s=0.0, breaks=0,
                 raises=None) -> None:
        self.result = result
        self.delay_s = delay_s
        self.breaks = breaks      # raise PoolBroken this many times
        self.raises = raises
        self.runs = 0
        self.resets = 0
        self.closed = False
        self.release = asyncio.Event()
        self.release.set()

    async def run(self, cell):
        self.runs += 1
        if self.breaks > 0:
            self.breaks -= 1
            raise PoolBroken("fake pool death")
        if self.raises is not None:
            raise self.raises
        await self.release.wait()
        if self.delay_s:
            await asyncio.sleep(self.delay_s)
        return self.result

    def reset(self):
        self.resets += 1

    def close(self):
        self.closed = True


def _manager(runner=None, cache=False, **config_overrides):
    return JobManager(_config(**config_overrides),
                      runner=runner or FakeRunner(), cache=cache)


class TestSingleFlightDedup:
    def test_concurrent_identical_submissions_execute_once(self, cache_dir):
        runner = FakeRunner(delay_s=0.02)
        jobs = JobManager(_config(), runner=runner,
                          cache=ResultCache())

        async def body():
            return await asyncio.gather(*(jobs.submit(_cell())
                                          for _ in range(4)))

        outcomes = run(body())
        assert runner.runs == 1, "duplicates were not coalesced"
        statuses = sorted(o.status for o in outcomes)
        assert statuses == ["coalesced"] * 3 + ["executed"]
        assert all(o.fingerprint == outcomes[0].fingerprint
                   for o in outcomes)
        assert jobs.metrics.counters["executed"] == 1
        assert jobs.metrics.counters["coalesced"] == 3

    def test_label_does_not_defeat_coalescing(self, cache_dir):
        # The fingerprint excludes the display label, so renamed
        # duplicates still coalesce.
        runner = FakeRunner(delay_s=0.02)
        jobs = JobManager(_config(), runner=runner, cache=ResultCache())

        async def body():
            return await asyncio.gather(jobs.submit(_cell(label="a")),
                                        jobs.submit(_cell(label="b")))

        run(body())
        assert runner.runs == 1

    def test_unkeyable_cells_never_coalesce(self):
        runner = FakeRunner(delay_s=0.02)
        jobs = _manager(runner=runner, cache=False)

        async def body():
            return await asyncio.gather(*(jobs.submit(_cell())
                                          for _ in range(3)))

        outcomes = run(body())
        assert runner.runs == 3
        assert all(o.status == "executed" and o.fingerprint is None
                   for o in outcomes)


class TestWarmHits:
    @pytest.fixture
    def warm(self, cache_dir):
        from repro.analysis.parallel import _run_cell

        stats = _run_cell(_cell())
        assert ResultCache().put(_cell(), stats)
        return stats

    def test_hit_answers_from_cache_without_running(self, warm):
        runner = FakeRunner()
        jobs = JobManager(_config(), runner=runner, cache=ResultCache())
        outcome = run(jobs.submit(_cell()))
        assert outcome.status == "hit" and outcome.stats == warm
        assert runner.runs == 0
        assert jobs.metrics.counters["hits"] == 1

    def test_hit_latency_under_10ms(self, warm):
        jobs = JobManager(_config(), runner=FakeRunner(),
                          cache=ResultCache())
        latencies = [run(jobs.submit(_cell())).latency_ms
                     for _ in range(3)]
        assert min(latencies) < 10.0, latencies
        assert jobs.metrics.hit_latency.total == 3

    def test_leader_stores_result_for_later_hits(self, cache_dir):
        from repro.analysis.parallel import _run_cell

        stats = _run_cell(_cell())
        runner = FakeRunner(result=stats)
        jobs = JobManager(_config(), runner=runner, cache=ResultCache())
        first = run(jobs.submit(_cell()))
        second = run(jobs.submit(_cell()))
        assert (first.status, second.status) == ("executed", "hit")
        assert runner.runs == 1
        assert jobs.metrics.counters["cache_stores"] == 1


class TestAdmission:
    def test_overload_sheds_with_429(self):
        runner = FakeRunner()
        runner.release.clear()  # block the first job indefinitely
        jobs = _manager(runner=runner, queue_limit=1)

        async def body():
            first = asyncio.ensure_future(jobs.submit(_cell(seed_extra=1)))
            await asyncio.sleep(0.01)
            with pytest.raises(Overloaded, match="queue full"):
                await jobs.submit(_cell(seed_extra=2))
            runner.release.set()
            return await first

        outcome = run(body())
        assert outcome.status == "executed"
        assert jobs.metrics.counters["shed"] == 1

    def test_draining_rejects_submissions(self):
        jobs = _manager()
        run(jobs.drain())
        with pytest.raises(Draining):
            run(jobs.submit(_cell()))
        assert jobs.runner.closed


class TestTimeoutsAndRetries:
    def test_timeout_maps_to_job_timeout(self):
        jobs = _manager(runner=FakeRunner(delay_s=1.0), timeout_s=0.02)
        with pytest.raises(JobTimeout, match="exceeded"):
            run(jobs.submit(_cell()))
        assert jobs.metrics.counters["timeouts"] == 1

    def test_pool_break_retries_then_succeeds(self):
        runner = FakeRunner(breaks=2)
        jobs = _manager(runner=runner, retries=2)
        outcome = run(jobs.submit(_cell()))
        assert outcome.status == "executed"
        assert runner.runs == 3 and runner.resets == 2
        assert jobs.metrics.counters["retries"] == 2
        assert jobs.metrics.counters["failed"] == 0

    def test_pool_break_exhausts_retries(self):
        runner = FakeRunner(breaks=99)
        jobs = _manager(runner=runner, retries=1)
        with pytest.raises(JobFailed, match="broke 2 time"):
            run(jobs.submit(_cell()))
        assert runner.runs == 2
        assert jobs.metrics.counters["failed"] == 1

    def test_simulation_error_fails_fast_without_retry(self):
        runner = FakeRunner(raises=ValueError("bad kernel"))
        jobs = _manager(runner=runner, retries=5)
        with pytest.raises(JobFailed, match="bad kernel"):
            run(jobs.submit(_cell()))
        assert runner.runs == 1, "deterministic failure was retried"

    def test_failed_flight_does_not_poison_the_next(self):
        runner = FakeRunner(breaks=99)
        jobs = _manager(runner=runner, retries=0)
        with pytest.raises(JobFailed):
            run(jobs.submit(_cell()))
        runner.breaks = 0
        assert run(jobs.submit(_cell())).status == "executed"


class TestDrain:
    def test_drain_waits_for_active_jobs(self):
        runner = FakeRunner(delay_s=0.05)
        jobs = _manager(runner=runner)

        async def body():
            inflight = asyncio.ensure_future(jobs.submit(_cell()))
            await asyncio.sleep(0.01)
            clean = await jobs.drain()
            outcome = await inflight
            return clean, outcome

        clean, outcome = run(body())
        assert clean is True and outcome.status == "executed"
        assert jobs.runner.closed
        assert jobs.metrics.counters["drained"] == 1

    def test_impatient_drain_reports_unclean(self):
        runner = FakeRunner()
        runner.release.clear()
        jobs = _manager(runner=runner)

        async def body():
            inflight = asyncio.ensure_future(jobs.submit(_cell()))
            await asyncio.sleep(0.01)
            clean = await jobs.drain(timeout_s=0.02)
            runner.release.set()
            await inflight
            return clean

        assert run(body()) is False


class TestEventBus:
    def test_lifecycle_events_ride_the_obs_bus(self, cache_dir):
        from repro.serve.metrics import SV_EXEC, SV_HIT, SV_SUBMIT

        from repro.analysis.parallel import _run_cell

        stats = _run_cell(_cell())
        jobs = JobManager(_config(), runner=FakeRunner(result=stats),
                          cache=ResultCache())
        kinds = []
        jobs.metrics.bus.subscribe(lambda event: kinds.append(event.kind))
        run(jobs.submit(_cell()))
        run(jobs.submit(_cell()))
        assert kinds == [SV_SUBMIT, SV_EXEC, SV_SUBMIT, SV_HIT]
