"""Fixtures for the job-server tests.

No pytest-asyncio in the toolchain: coroutine tests wrap themselves in
``asyncio.run`` (see the ``run`` helper), and the HTTP integration
tests run the server's event loop on a background thread while the
blocking :class:`~repro.serve.client.ServeClient` talks to it from the
test thread -- exactly how a real client process would.
"""

import asyncio
import threading

import pytest


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """A private, enabled cache root, with global counters zeroed."""
    from repro.cache import PROGRAM_STATS, RESULT_STATS

    root = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    RESULT_STATS.reset()
    PROGRAM_STATS.reset()
    return root


def run(coroutine, timeout_s: float = 60.0):
    """``asyncio.run`` with a hang guard (a stuck test fails, not CI)."""
    async def guarded():
        return await asyncio.wait_for(coroutine, timeout_s)
    return asyncio.run(guarded())


class ServerThread:
    """A live ReproServer on its own event-loop thread."""

    def __init__(self, config, jobs=None) -> None:
        from repro.serve.server import ReproServer

        self.server = ReproServer(config, jobs=jobs)
        self.loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._main, daemon=True)

    def _main(self) -> None:
        async def body():
            await self.server.start()
            self.loop = asyncio.get_running_loop()
            self._ready.set()
            await self.server.serve_forever()
        asyncio.run(body())

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(15):  # pragma: no cover - startup hang
            raise RuntimeError("server did not start")
        return self

    def __exit__(self, *exc) -> None:
        shutdown = self.server.stop(drain=False)
        try:
            self.call(shutdown, timeout_s=15)
        except RuntimeError:
            shutdown.close()  # a test already stopped the server
        self._thread.join(timeout=15)

    def call(self, coroutine, timeout_s: float = 60.0):
        """Run a coroutine on the server loop from the test thread."""
        future = asyncio.run_coroutine_threadsafe(coroutine, self.loop)
        return future.result(timeout_s)

    def client(self):
        from repro.serve.client import ServeClient

        return ServeClient(self.server.host, self.server.port)


@pytest.fixture
def server_thread():
    return ServerThread
