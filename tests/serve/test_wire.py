"""The serve wire schema: strict decoding, fixed defaults, lossless records."""

import pytest

from repro.serve.wire import (MAX_CELLS, WireError, decode_cell,
                              decode_submission, encode_record)

MINIMAL = {"workload": "gjk"}


class TestDecodeCell:
    def test_minimal_cell_uses_fixed_defaults(self):
        cell = decode_cell(MINIMAL)
        assert cell.workload == "gjk" and cell.label == "gjk"
        assert cell.exp.n_clusters == 4 and cell.exp.seed == 1234
        assert cell.exp.backend == "interp"

    def test_defaults_ignore_server_environment(self, monkeypatch):
        # A service must key cells by client bytes only: the same wire
        # cell decodes identically whatever REPRO_* the server has.
        from repro.cache import cell_key

        before = cell_key(decode_cell(MINIMAL))
        monkeypatch.setenv("REPRO_SEED", "9")
        monkeypatch.setenv("REPRO_CLUSTERS", "2")
        assert cell_key(decode_cell(MINIMAL)) == before

    def test_full_cell_round_trips_fields(self):
        cell = decode_cell({
            "workload": "kmeans", "policy": "swcc", "clusters": 2,
            "scale": 0.12, "seed": 7, "ops_per_slice": 4,
            "backend": "vec", "track_data": True, "label": "mine",
            "config": {"l2_bytes": 8192}})
        assert cell.label == "mine"
        assert cell.exp.n_clusters == 2 and cell.exp.seed == 7
        assert cell.exp.backend == "vec"
        assert dict(cell.config_extra) == {"l2_bytes": 8192}

    @pytest.mark.parametrize("patch,needle", [
        ({"workload": "nope"}, "unknown workload"),
        ({"policy": "nope"}, "unknown policy"),
        ({"backend": "nope"}, "unknown backend"),
        ({"clusters": 0}, "clusters"),
        ({"scale": -1.0}, "scale"),
        ({"ops_per_slice": 0}, "ops_per_slice"),
        ({"seed": True}, "seed"),
        ({"scale": "big"}, "scale"),
        ({"frobnicate": 1}, "unknown cell field"),
        ({"config": {"no_such_knob": 1}}, "no_such_knob"),
        ({"config": {"l2_bytes": [1]}}, "scalar"),
        ({"config": "x"}, "config"),
    ])
    def test_bad_cells_name_the_field(self, patch, needle):
        with pytest.raises(WireError, match=needle):
            decode_cell({**MINIMAL, **patch})

    def test_missing_workload_is_an_error(self):
        with pytest.raises(WireError, match="workload"):
            decode_cell({})

    def test_non_object_cell_is_an_error(self):
        with pytest.raises(WireError, match="JSON object"):
            decode_cell(["gjk"])


class TestDecodeSubmission:
    def test_single_cell_form(self):
        cells = decode_submission({"schema": 1, "cell": MINIMAL})
        assert len(cells) == 1 and cells[0].workload == "gjk"

    def test_batch_form_preserves_order(self):
        cells = decode_submission({"cells": [
            {"workload": "gjk"}, {"workload": "kmeans"}]})
        assert [c.workload for c in cells] == ["gjk", "kmeans"]

    @pytest.mark.parametrize("payload,needle", [
        ([], "JSON object"),
        ({}, "exactly one"),
        ({"cell": MINIMAL, "cells": [MINIMAL]}, "exactly one"),
        ({"cells": "x"}, "must be a list"),
        ({"cells": []}, "no cells"),
        ({"schema": 99, "cell": MINIMAL}, "unsupported schema"),
    ])
    def test_malformed_submissions(self, payload, needle):
        with pytest.raises(WireError, match=needle):
            decode_submission(payload)

    def test_oversized_batch_maps_to_413(self):
        with pytest.raises(WireError, match="too many cells") as info:
            decode_submission({"cells": [MINIMAL] * (MAX_CELLS + 1)})
        assert info.value.status == 413

    def test_default_wire_error_status_is_400(self):
        with pytest.raises(WireError) as info:
            decode_submission({})
        assert info.value.status == 400


class TestEncodeRecord:
    def test_error_record_shape(self):
        record = encode_record("shed", None, 1.25, error="queue full")
        assert record == {"status": "shed", "fingerprint": None,
                          "latency_ms": 1.25, "result": None,
                          "error": "queue full"}

    def test_result_is_the_lossless_cache_form(self, cache_dir):
        from repro.analysis.parallel import _run_cell
        from repro.cache.results import decode_stats

        cell = decode_cell({"workload": "gjk", "clusters": 2,
                            "scale": 0.12})
        stats = _run_cell(cell)
        record = encode_record("executed", "f" * 64, 10.0, stats)
        assert decode_stats(record["result"]) == stats
