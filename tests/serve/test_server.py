"""End-to-end HTTP tests: real sockets, real worker pool, real cache.

The server's event loop runs on a background thread
(tests/serve/conftest.ServerThread); the blocking ServeClient talks to
it over loopback exactly as an external submitter would.
"""

import json
import threading
import time

import pytest

from repro.cache import ResultCache
from repro.serve.config import ServeConfig
from repro.serve.jobs import JobManager

TINY = {"workload": "gjk", "clusters": 2, "scale": 0.12}


def _config(**overrides):
    base = dict(port=0, jobs=2, queue_limit=8, timeout_s=60.0,
                retries=1, backoff_s=0.01, drain_s=10.0)
    base.update(overrides)
    return ServeConfig(**base)


@pytest.fixture
def live(cache_dir, server_thread):
    with server_thread(_config()) as handle:
        yield handle


class TestEndpoints:
    def test_healthz(self, live):
        assert live.client().health() == {"status": "ok", "schema": 1}

    def test_index_lists_endpoints(self, live):
        status, doc = live.client().request("GET", "/")
        assert status == 200 and "/submit" in doc["endpoints"]

    def test_unknown_path_is_404(self, live):
        status, doc = live.client().request("GET", "/nope")
        assert status == 404 and "no such endpoint" in doc["error"]

    def test_wrong_method_is_405(self, live):
        status, _doc = live.client().request("GET", "/submit")
        assert status == 405
        status, _doc = live.client().request("POST", "/stats")
        assert status == 405

    def test_bad_json_is_400(self, live):
        status, doc = live.client().submit_raw({"cells": "not-a-list"})
        assert status == 400 and "must be a list" in doc["error"]

    def test_unknown_workload_is_400(self, live):
        status, record = live.client().submit_cell({"workload": "nope"})
        assert status == 400 and "unknown workload" in record["error"]

    def test_oversized_body_is_413(self, live):
        import http.client

        conn = http.client.HTTPConnection(live.server.host,
                                          live.server.port, timeout=10)
        try:
            conn.request("POST", "/submit", body=b"{}",
                         headers={"Content-Length": str(64 << 20)})
            assert conn.getresponse().status == 413
        finally:
            conn.close()


class TestSubmission:
    def test_duplicate_concurrent_pair_executes_once(self, live):
        client = live.client()
        answers = [None, None]

        def submit(index):
            answers[index] = client.submit_cell(TINY)

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        statuses = sorted(record["status"] for _s, record in answers)
        assert statuses == ["coalesced", "executed"]
        assert all(status == 200 for status, _r in answers)
        # Both callers got byte-identical results from one execution.
        assert (json.dumps(answers[0][1]["result"], sort_keys=True)
                == json.dumps(answers[1][1]["result"], sort_keys=True))
        counters = client.stats()["serve"]["counters"]
        assert counters["executed"] == 1 and counters["coalesced"] == 1

    def test_warm_hit_is_fast_and_identical(self, live):
        client = live.client()
        _status, cold = client.submit_cell(TINY)
        assert cold["status"] in ("executed", "hit")
        start = time.perf_counter()
        status, warm = client.submit_cell(TINY)
        wall_ms = (time.perf_counter() - start) * 1000.0
        assert status == 200 and warm["status"] == "hit"
        assert warm["latency_ms"] < 10.0, "server-side hit budget blown"
        assert wall_ms < 1000.0
        assert warm["result"] == cold["result"]
        assert warm["fingerprint"] == cold["fingerprint"]

    def test_batch_answers_200_with_per_cell_records(self, live):
        status, records = live.client().submit_cells(
            [TINY, {"workload": "nope"}])
        assert status == 200 and len(records) == 2
        assert records[0]["status"] in ("executed", "hit")
        assert records[1]["status"] == "failed"
        assert "unknown workload" in records[1]["error"]

    def test_stats_shape(self, live):
        live.client().submit_cell(TINY)
        doc = live.client().stats()
        serve = doc["serve"]
        assert serve["counters"]["submitted"] >= 1
        assert {"active", "running", "queued"} <= set(serve["queue"])
        assert serve["latency"]["hit"]["buckets_ms"][-1] == "inf"
        assert serve["pool"]["mode"] in ("process", "thread")
        assert "results" in doc["cache"]


class TestFailureMapping:
    def test_timeout_maps_to_504(self, cache_dir, server_thread):
        with server_thread(_config(timeout_s=0.005, retries=0)) as handle:
            status, record = handle.client().submit_cell(TINY)
            assert status == 504 and record["status"] == "timeout"
            assert "exceeded" in record["error"]


class TestDrain:
    def test_drain_flips_health_and_rejects_with_503(self, cache_dir,
                                                     server_thread):
        with server_thread(_config()) as handle:
            jobs = handle.server.jobs
            clean = handle.call(jobs.drain())
            assert clean is True
            # The listener is still up (stop() wasn't called): probes
            # must see "draining" and submissions must bounce with 503.
            client = handle.client()
            assert client.health()["status"] == "draining"
            status, record = client.submit_cell(TINY)
            assert status == 503 and record["status"] == "draining"

    def test_sigterm_drains_without_corrupting_the_cache(self, cache_dir,
                                                         server_thread):
        from repro.cache import verify_cache

        with server_thread(_config()) as handle:
            client = handle.client()
            _status, record = client.submit_cell(TINY)
            assert record["status"] in ("executed", "hit")
            # Deliver the handler's coroutine directly (the test process
            # shares signal state; raising a real SIGTERM would kill
            # pytest's own loop-less main thread handling).
            import signal

            handle.call(handle.server._on_signal(signal.SIGTERM),
                        timeout_s=30)
            report = verify_cache(cache_dir)
            assert not report, report.problems
            entries = list((cache_dir / "results").rglob("*.json"))
            assert entries and not list(
                (cache_dir / "results").rglob("*.tmp*"))
