"""End-to-end scenarios exercising the whole stack together."""

import pytest

from repro import Domain, Machine, MachineConfig, Policy, get_workload
from repro.errors import CoherenceRaceError

from tests.conftest import make_machine


class TestFigure1Scenario:
    """Figure 1: lines of one address range migrate between domains over
    time without any copying -- same addresses, different protocols."""

    def test_line_migrates_without_copies(self):
        machine = make_machine(Policy.cohesion())
        ms = machine.memsys
        api = machine.api
        ptr = api.coh_malloc(4 * 32)  # four lines
        lines = [(ptr >> 5) + i for i in range(4)]

        # t0: all SWcc (initial state); write through the SWcc path.
        machine.clusters[0].store(0, ptr, 1111, 0.0)
        machine.clusters[0].flush_line(0, lines[0], 10.0)

        # t1: move two lines to HWcc; the data stays where it is.
        api.coh_HWcc_region(ptr, 2 * 32)
        assert not ms.fine.is_swcc(lines[0])
        assert ms.fine.is_swcc(lines[2])

        # t2: read through the HWcc path -- same address, same value.
        _t, value = machine.clusters[1].load(0, ptr, 1e5)
        assert value == 1111
        assert not machine.clusters[1].l2.peek(lines[0]).incoherent

        # t3: write under HWcc, then migrate back to SWcc.
        machine.clusters[1].store(0, ptr, 2222, 2e5)
        api.coh_SWcc_region(ptr, 2 * 32)
        assert ms.fine.is_swcc(lines[0])

        # t4: the SWcc read sees the value written under HWcc.
        reply = ms.read_line(0, lines[0], 3e5)
        assert reply.incoherent and reply.data[0] == 2222


class TestProducerConsumerAcrossDomains:
    def test_hwcc_publish_swcc_read_phase(self):
        """A producer fills a buffer under HWcc (fine-grained, no flush
        discipline needed), the runtime moves it to SWcc for a read-only
        phase, and every cluster streams it without directory traffic."""
        machine = make_machine(Policy.cohesion())
        ms = machine.memsys
        api = machine.api
        ptr = api.coh_malloc(8 * 32)
        api.coh_HWcc_region(ptr, 8 * 32)
        for i in range(8):
            machine.clusters[0].store(0, ptr + 32 * i, 100 + i, 50.0 * i)
        api.coh_SWcc_region(ptr, 8 * 32)

        probe_before = ms.counters.probe_response
        dir_entries = ms.total_directory_entries()
        for cid, cluster in enumerate(machine.clusters):
            for i in range(8):
                _t, value = cluster.load(0, ptr + 32 * i, 1e6 + 100 * i + cid)
                assert value == 100 + i
        assert ms.counters.probe_response == probe_before
        assert ms.total_directory_entries() == dir_entries  # nothing new tracked


class TestRaceDetection:
    def test_buggy_software_detected_at_transition(self):
        machine = make_machine(Policy.cohesion())
        ptr = machine.api.coh_malloc(64)
        machine.clusters[0].store(0, ptr, 1, 0.0)
        machine.clusters[1].store(0, ptr, 2, 0.0)
        with pytest.raises(CoherenceRaceError):
            machine.api.coh_HWcc_region(ptr, 64)


class TestWorkloadEndToEnd:
    def test_full_workload_under_memory_pressure(self):
        """A realistic run on a tiny L2 exercises every eviction path."""
        machine = make_machine(Policy.cohesion(), l2_bytes=8 * 1024)
        program = get_workload("stencil", scale=0.12).build(machine)
        stats = machine.run(program)
        assert stats.load_mismatches == []
        assert machine.verify_expected(program.expected) == []
        assert stats.messages.cache_eviction > 0  # dirty evictions happened

    def test_dir4b_broadcasts_under_wide_sharing(self):
        from repro.types import DirectoryKind
        policy = Policy(kind=Policy.cohesion().kind,
                        directory=DirectoryKind.DIR4B,
                        dir_entries_per_bank=1024, dir_assoc=64)
        machine = make_machine(policy)
        program = get_workload("kmeans", scale=0.12).build(machine)
        stats = machine.run(program)
        assert stats.load_mismatches == []
        assert machine.verify_expected(program.expected) == []

    def test_one_cluster_machine(self):
        machine = Machine(MachineConfig(track_data=True).scaled(1),
                          Policy.cohesion())
        program = get_workload("gjk", scale=0.1).build(machine)
        stats = machine.run(program)
        assert stats.load_mismatches == []
        assert machine.verify_expected(program.expected) == []

    def test_larger_machine_smoke(self):
        machine = Machine(MachineConfig(track_data=True).scaled(8),
                          Policy.cohesion())
        program = get_workload("mri", scale=0.1).build(machine)
        stats = machine.run(program)
        assert stats.load_mismatches == []
        assert stats.tasks_executed == program.total_tasks


class TestCrossPolicyConsistency:
    def test_same_program_shape_all_policies(self):
        """Task counts and logical op streams are policy-independent; only
        the coherence metadata differs."""
        totals = {}
        for label, policy in (("swcc", Policy.swcc()),
                              ("hwcc", Policy.hwcc_ideal()),
                              ("cohesion", Policy.cohesion())):
            machine = make_machine(policy)
            program = get_workload("sobel", scale=0.12).build(machine)
            totals[label] = program.total_tasks
        assert len(set(totals.values())) == 1

    def test_swcc_quieter_than_hwcc_on_streaming(self):
        """The Figure 2 direction on a streaming kernel."""
        results = {}
        for label, policy in (("swcc", Policy.swcc()),
                              ("hwcc", Policy.hwcc_ideal())):
            machine = make_machine(policy, track_data=False)
            program = get_workload("sobel", scale=0.5).build(machine)
            results[label] = machine.run(program).total_messages
        assert results["hwcc"] > results["swcc"]

    def test_cohesion_uses_less_directory_than_hwcc(self):
        """The Figure 9c direction."""
        results = {}
        for label, policy in (("hwcc", Policy.hwcc_ideal()),
                              ("cohesion", Policy.cohesion_ideal())):
            machine = make_machine(policy, track_data=False)
            program = get_workload("heat", scale=0.5).build(machine)
            results[label] = machine.run(program).dir_avg_entries
        assert results["cohesion"] < 0.5 * results["hwcc"]
