"""Shared fixtures: small machines for every design point."""

import pytest

from repro import Machine, MachineConfig, Policy


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_dir(tmp_path_factory):
    """Point the experiment cache at a per-session temp directory.

    Keeps the suite from reading a developer's warm ``~/.cache/repro``
    (which would mask regressions behind stale hits) and from leaving
    test artifacts there. Individual cache tests override this with
    their own directories or disable caching outright.
    """
    import os

    root = tmp_path_factory.mktemp("repro-cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    yield root
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


def small_config(n_clusters: int = 2, track_data: bool = True,
                 **overrides) -> MachineConfig:
    """A tiny machine for tests: 2 clusters (16 cores), data-tracking."""
    config = MachineConfig(track_data=track_data).scaled(n_clusters)
    if overrides:
        import dataclasses
        config = dataclasses.replace(config, **overrides)
    return config


def make_machine(policy: Policy, n_clusters: int = 2,
                 track_data: bool = True, **overrides) -> Machine:
    return Machine(small_config(n_clusters, track_data, **overrides), policy)


@pytest.fixture
def config():
    return small_config()


@pytest.fixture
def swcc_machine():
    return make_machine(Policy.swcc())


@pytest.fixture
def hwcc_machine():
    return make_machine(Policy.hwcc_ideal())


@pytest.fixture
def hwcc_real_machine():
    return make_machine(Policy.hwcc_real(entries_per_bank=512, assoc=8))


@pytest.fixture
def cohesion_machine():
    return make_machine(Policy.cohesion())


ALL_POLICY_LABELS = ["swcc", "hwcc_ideal", "hwcc_real", "dir4b", "cohesion",
                     "cohesion_ideal"]


def policy_by_label(label: str) -> Policy:
    from repro.types import DirectoryKind

    return {
        "swcc": Policy.swcc(),
        "hwcc_ideal": Policy.hwcc_ideal(),
        "hwcc_real": Policy.hwcc_real(entries_per_bank=1024, assoc=64),
        "dir4b": Policy(directory=DirectoryKind.DIR4B,
                        kind=Policy.hwcc_real().kind,
                        dir_entries_per_bank=1024, dir_assoc=64),
        "cohesion": Policy.cohesion(entries_per_bank=1024, assoc=64),
        "cohesion_ideal": Policy.cohesion_ideal(),
    }[label]
