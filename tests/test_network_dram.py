"""Interconnect and DRAM timing substrate."""

import pytest

from repro import MachineConfig
from repro.interconnect.network import Network
from repro.mem.dram import DramModel


@pytest.fixture
def config():
    return MachineConfig().scaled(4)


class TestNetwork:
    def test_one_way_latency_composition(self, config):
        net = Network(config)
        expected = (config.cluster_bus_latency + 2 * config.tree_hop_latency
                    + config.crossbar_latency)
        assert net.one_way_latency == expected

    def test_tree_assignment(self):
        net = Network(MachineConfig())  # 128 clusters, 16 per tree
        assert net.tree_of(0) == 0
        assert net.tree_of(15) == 0
        assert net.tree_of(16) == 1
        assert net.tree_of(127) == 7

    def test_transit_includes_latency(self, config):
        net = Network(config)
        arrive = net.to_l3(0, 100.0)
        assert arrive >= 100.0 + net.one_way_latency

    def test_round_trip(self, config):
        net = Network(config)
        done = net.round_trip(0, 0.0, service=10.0)
        assert done >= 2 * net.one_way_latency + 10.0

    def test_message_counting(self, config):
        net = Network(config)
        net.to_l3(0, 0.0)
        net.to_cluster(1, 5.0)
        assert net.messages == 2

    def test_saturation_queues(self, config):
        net = Network(config)
        base = net.to_l3(0, 0.0)
        for _ in range(2000):
            last = net.to_l3(0, 0.0)
        assert last > base  # the link backed up


class TestDram:
    def test_access_latency(self, config):
        dram = DramModel(config)
        done = dram.access(0, 0.0)
        assert done >= config.dram_latency

    def test_channel_contention(self, config):
        dram = DramModel(config)
        first = dram.access(0, 0.0)
        for _ in range(200):
            last = dram.access(0, 0.0)
        assert last > first

    def test_channels_independent(self, config):
        if config.dram_channels < 2:
            pytest.skip("single-channel scaled config")
        dram = DramModel(config)
        for _ in range(50):
            dram.access(0, 0.0)
        assert dram.access(1, 0.0) == pytest.approx(
            config.dram_latency + dram.occupancy_per_line)

    def test_access_counting(self, config):
        dram = DramModel(config)
        dram.access(0, 0.0)
        dram.access(0, 1.0)
        assert dram.accesses[0] == 2
        assert dram.total_accesses == 2

    def test_multi_line_transfer_costs_more(self, config):
        dram = DramModel(config)
        one = dram.access(0, 0.0, lines=1)
        dram2 = DramModel(config)
        four = dram2.access(0, 0.0, lines=4)
        assert four > one

    def test_bandwidth_from_config(self):
        config = MachineConfig()
        dram = DramModel(config)
        # 16 B/cycle/channel -> 2 cycles per 32 B line
        assert dram.occupancy_per_line == pytest.approx(2.0)
